package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/gpu"
	"repro/internal/trace"
)

// JobSpec is the complete pre-execution description of one job: who submits
// it, when, what it asks for, how long it would run, how it ends, and the
// utilization trajectory of every GPU it holds. Both dataset-construction
// paths consume specs — the analytic path summarizes them directly, the
// discrete-event path schedules them on the simulated cluster.
type JobSpec struct {
	ID        int64
	User      int
	Category  trace.Category
	Interface trace.Interface
	Exit      trace.ExitStatus

	SubmitSec float64
	RunSec    float64
	LimitSec  float64

	NumGPUs     int
	CoresPerGPU int
	MemGBPerGPU float64
	Cores       int     // CPU-only jobs: total cores
	MemGB       float64 // CPU-only jobs: total memory
	Exclusive   bool    // CPU-only jobs: whole-node reservation

	// Profiles holds one utilization trajectory per GPU; nil for CPU jobs.
	Profiles []*Profile
}

// IsGPU reports whether the spec requests GPUs.
func (s *JobSpec) IsGPU() bool { return s.NumGPUs > 0 }

// Config parameterizes a Generator.
type Config struct {
	Seed         uint64
	Users        int
	TotalJobs    int
	DurationDays float64
	// TimeSeriesJobs is the size of the detailed-monitoring subset (the
	// paper logged 2,149 jobs at 100 ms).
	TimeSeriesJobs int
	// TimeSeriesIntervalSec is the detailed sampling cadence. The paper used
	// 0.1 s; the default here is 1 s to bound memory, with the cadence fully
	// configurable (see DESIGN.md substitutions).
	TimeSeriesIntervalSec float64
	// MaxSeriesSamples caps one job's series length; longer jobs are sampled
	// at a proportionally coarser cadence.
	MaxSeriesSamples int
	Calib            Calibration
	GPUSpec          gpu.Spec
	PowerModel       gpu.PowerModel
}

// DefaultConfig returns the paper-scale configuration: 191 users, 74,820
// jobs over 125 days, 2,149-job detailed subset.
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		Users:                 191,
		TotalJobs:             74820,
		DurationDays:          125,
		TimeSeriesJobs:        2149,
		TimeSeriesIntervalSec: 1,
		MaxSeriesSamples:      20000,
		Calib:                 DefaultCalibration(),
		GPUSpec:               gpu.V100(),
		PowerModel:            gpu.DefaultPowerModel(),
	}
}

// ScaledConfig returns DefaultConfig with the population scaled by factor
// (users, jobs and the detailed subset), for tests and quick runs.
func ScaledConfig(factor float64) Config {
	cfg := DefaultConfig()
	scale := func(n int) int {
		v := int(math.Round(float64(n) * factor))
		if v < 1 {
			v = 1
		}
		return v
	}
	cfg.Users = scale(cfg.Users)
	cfg.TotalJobs = scale(cfg.TotalJobs)
	cfg.TimeSeriesJobs = scale(cfg.TimeSeriesJobs)
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Users < 1 || c.TotalJobs < 1 {
		return fmt.Errorf("workload: need at least one user and one job")
	}
	if c.DurationDays <= 0 {
		return fmt.Errorf("workload: non-positive duration")
	}
	if c.TimeSeriesIntervalSec <= 0 {
		return fmt.Errorf("workload: non-positive sampling interval")
	}
	if c.PowerModel == nil {
		return fmt.Errorf("workload: nil power model")
	}
	return c.Calib.Validate()
}

// Generator synthesizes the job population.
type Generator struct {
	cfg     Config
	users   []User
	arrival *ArrivalProcess
	lv      levelSamplers
	root    *dist.RNG
}

// NewGenerator builds a generator; the same (config, seed) always yields the
// same population.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := dist.New(cfg.Seed)
	g := &Generator{cfg: cfg, root: root}
	g.users = BuildUsers(cfg.Calib, cfg.Users, cfg.TotalJobs, root.Split())
	g.arrival = NewArrivalProcess(cfg.Calib, cfg.DurationDays)
	g.lv = newLevelSamplers(cfg.Calib)
	return g, nil
}

// Users returns the synthesized user population.
func (g *Generator) Users() []User { return g.users }

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// levelSamplers bundles the distributions behind per-job utilization draws.
type levelSamplers struct {
	smByCat     [trace.NumCategories]dist.Sampler
	memRatio    dist.Sampler
	memIntSM    dist.Sampler
	memIntMem   dist.Sampler
	memSizeHi   dist.Sampler
	memSizeLo   dist.Sampler
	pcieTx      dist.Sampler
	pcieRx      dist.Sampler
	activeHi    dist.Sampler
	activeLowME dist.Sampler
	activeDev   dist.Sampler
	activeIDE   dist.Sampler
	ifaceNonIDE *dist.Categorical
	coresPerGPU *dist.Categorical
}

func newLevelSamplers(c Calibration) levelSamplers {
	var lv levelSamplers
	// Active-phase SM levels per category (Figs. 5, 16). The per-job mean is
	// the level × active fraction, so levels sit above the target means.
	lv.smByCat[trace.Mature] = dist.NewMixture(
		dist.Component{Weight: 0.48, Dist: dist.Triangular{Low: 12, Mode: 42, High: 75}},
		dist.Component{Weight: 0.52, Dist: dist.Triangular{Low: 48, Mode: 78, High: 100}},
	)
	lv.smByCat[trace.Exploratory] = dist.NewMixture(
		dist.Component{Weight: 0.54, Dist: dist.Triangular{Low: 10, Mode: 34, High: 60}},
		dist.Component{Weight: 0.46, Dist: dist.Triangular{Low: 42, Mode: 68, High: 95}},
	)
	lv.smByCat[trace.Development] = dist.NewMixture(
		dist.Component{Weight: 0.70, Dist: dist.Uniform{Low: 0, High: 5}},
		dist.Component{Weight: 0.30, Dist: dist.Triangular{Low: 5, Mode: 15, High: 40}},
	)
	lv.smByCat[trace.IDE] = dist.NewMixture(
		dist.Component{Weight: 0.85, Dist: dist.Uniform{Low: 0, High: 2}},
		dist.Component{Weight: 0.15, Dist: dist.Triangular{Low: 3, Mode: 8, High: 20}},
	)
	// Memory bandwidth rides compute except in memory-intensive jobs.
	lv.memRatio = dist.Uniform{Low: 0.02, High: 0.15}
	lv.memIntSM = dist.Uniform{Low: 0, High: 6}
	lv.memIntMem = dist.Triangular{Low: 3, Mode: 10, High: 35}
	// Memory size (Fig. 4a: median 9 %, 15 % of jobs above 50 %).
	lv.memSizeHi = dist.NewMixture(
		dist.Component{Weight: 0.53, Dist: dist.Triangular{Low: 1, Mode: 6, High: 15}},
		dist.Component{Weight: 0.32, Dist: dist.Triangular{Low: 8, Mode: 18, High: 40}},
		dist.Component{Weight: 0.15, Dist: dist.Triangular{Low: 45, Mode: 70, High: 100}},
	)
	lv.memSizeLo = dist.Triangular{Low: 0.5, Mode: 4, High: 30}
	// PCIe bandwidths: the paper's Fig. 4b CDFs are near-linear, i.e. the
	// per-job means are close to uniformly spread.
	lv.pcieTx = dist.Uniform{Low: 0, High: 88}
	lv.pcieRx = dist.Uniform{Low: 0, High: 95}
	// Active-time fractions (Fig. 6a: median 84 %, p25 14 %, p75 95 %).
	lv.activeHi = dist.Beta{A: 8, B: 1}
	lv.activeLowME = dist.Uniform{Low: 0.02, High: 0.20}
	lv.activeDev = dist.Uniform{Low: 0.02, High: 0.30}
	lv.activeIDE = dist.Uniform{Low: 0.005, High: 0.12}
	w := c.NonIDEInterfaceWeights
	lv.ifaceNonIDE = dist.NewCategorical(w[trace.MapReduce], w[trace.Batch], w[trace.Interactive], w[trace.Other])
	// Host-CPU slice per GPU: GPU jobs "request fewer CPU cores" (§III).
	lv.coresPerGPU = dist.NewCategorical(0.25, 0.35, 0.25, 0.15) // 2, 4, 8, 12 cores
	return lv
}

var coresPerGPUChoices = []int{2, 4, 8, 12}

// interfaceUtilFactor scales utilization by submission interface (Fig. 5:
// map-reduce and interactive jobs spend their time in data movement and
// user think-time).
func interfaceUtilFactor(i trace.Interface) float64 {
	switch i {
	case trace.MapReduce:
		return 0.30
	case trace.Interactive:
		return 0.35
	case trace.Batch:
		return 0.70
	default:
		return 1.0
	}
}

// GenerateSpecs synthesizes the full job population, sorted by submission
// time with IDs assigned in submission order.
func (g *Generator) GenerateSpecs() []JobSpec {
	specs := make([]JobSpec, 0, g.cfg.TotalJobs)
	horizon := g.cfg.DurationDays * 86400
	for ui := range g.users {
		u := &g.users[ui]
		// Each user's stream is derived from the root so that the user's
		// jobs are invariant under changes to other users.
		rng := dist.New(g.cfg.Seed ^ (0x9E3779B97F4A7C15 * uint64(ui+1)))
		// Session-structured submissions: bursts of work separated by
		// density-sampled session starts.
		sessionLeft := 0
		var clock float64
		for k := 0; k < u.JobCount; k++ {
			if sessionLeft <= 0 || clock > horizon {
				clock = g.arrival.SampleSec(rng)
				sessionLeft = 1 + rng.Intn(int(2*g.cfg.Calib.SessionMeanJobs))
			} else {
				clock += dist.Exponential{Mean: g.cfg.Calib.SessionGapMeanSec}.Sample(rng)
				if clock > horizon {
					clock = g.arrival.SampleSec(rng)
					sessionLeft = 1 + rng.Intn(int(2*g.cfg.Calib.SessionMeanJobs))
				}
			}
			sessionLeft--
			var sp JobSpec
			if rng.Bool(u.GPUFrac) {
				sp = g.gpuJob(u, rng)
			} else {
				sp = g.cpuJob(u, rng)
			}
			sp.SubmitSec = clock
			specs = append(specs, sp)
		}
	}
	sort.Slice(specs, func(a, b int) bool { return specs[a].SubmitSec < specs[b].SubmitSec })
	for i := range specs {
		specs[i].ID = int64(i + 1)
	}
	return specs
}

// gpuJob synthesizes one GPU job for user u.
func (g *Generator) gpuJob(u *User, rng *dist.RNG) JobSpec {
	c := g.cfg.Calib
	cat := CategoryFromDraw(u.CategoryMix.Draw(rng))

	var iface trace.Interface
	if cat == trace.IDE {
		iface = trace.Interactive
	} else {
		iface = trace.Interface(g.lv.ifaceNonIDE.Draw(rng))
	}

	spec := JobSpec{
		User:      u.Index,
		Category:  cat,
		Interface: iface,
	}

	// GPU count.
	spec.NumGPUs = 1
	multiProb := u.MultiProb
	if cat == trace.Exploratory {
		multiProb = clampF(multiProb*c.ExplMultiBoost, 0, 0.9)
	}
	if u.MaxGPUs > 1 && rng.Bool(multiProb) {
		spec.NumGPUs = drawGPUCount(u.MaxGPUs, rng)
	}

	// Run time and terminal disposition.
	switch cat {
	case trace.IDE:
		// IDE sessions idle until the wall-clock limit kills them (§VI).
		if rng.Bool(c.IDETimeoutShortProb) {
			spec.LimitSec = 12 * 3600
		} else {
			spec.LimitSec = 24 * 3600
		}
		spec.RunSec = spec.LimitSec
		spec.Exit = trace.ExitTimeout
	default:
		runMin := u.RuntimeMedianMin * c.CategoryRuntimeFactor[cat] *
			math.Exp(u.RuntimeLogSigma*rng.NormFloat64())
		if spec.NumGPUs > 1 {
			runMin *= c.MultiGPURuntimeFactor
		}
		runMin = clampF(runMin, 0.6, c.MaxRunMinutes)
		spec.RunSec = runMin * 60
		spec.LimitSec = 24 * 3600
		if spec.RunSec > spec.LimitSec {
			spec.RunSec = spec.LimitSec - 60
		}
		switch cat {
		case trace.Mature:
			spec.Exit = trace.ExitSuccess
		case trace.Exploratory:
			spec.Exit = trace.ExitCancelled
		default:
			spec.Exit = trace.ExitFailed
		}
	}
	// A sliver of GPU jobs are under the 30 s analysis filter.
	if cat != trace.IDE && rng.Bool(c.ShortGPUJobFraction) {
		spec.RunSec = 2 + 23*rng.Float64()
	}

	// Host-side request.
	spec.CoresPerGPU = coresPerGPUChoices[g.lv.coresPerGPU.Draw(rng)]
	spec.MemGBPerGPU = 16 + 48*rng.Float64()

	// Utilization levels.
	ifF := interfaceUtilFactor(iface)
	var level gpu.Utilization
	memIntensive := (cat == trace.Mature || cat == trace.Exploratory) && rng.Bool(c.MemIntensiveFrac)
	if memIntensive {
		level.SMPct = g.lv.memIntSM.Sample(rng)
		level.MemPct = g.lv.memIntMem.Sample(rng)
	} else {
		level.SMPct = g.lv.smByCat[cat].Sample(rng)
		level.MemPct = level.SMPct * g.lv.memRatio.Sample(rng)
	}
	// Per-job jitter decouples a user's jobs from each other (Fig. 11: the
	// median user's SM CoV is 121 %); its spread is a rank-independent user
	// trait (Fig. 12).
	jobJitter := math.Exp(u.JitterSigma*rng.NormFloat64() - u.JitterSigma*u.JitterSigma/2)
	level.SMPct *= u.UtilBias * ifF * jobJitter
	level.MemPct *= u.UtilBias * ifF * jobJitter
	if cat == trace.Mature || cat == trace.Exploratory {
		level.MemSizePct = g.lv.memSizeHi.Sample(rng)
	} else {
		level.MemSizePct = g.lv.memSizeLo.Sample(rng)
	}
	level.PCIeTxPct = g.lv.pcieTx.Sample(rng)
	level.PCIeRxPct = g.lv.pcieRx.Sample(rng)
	// A sliver of jobs pin GPU memory to capacity (Fig. 8a's memory-size
	// bottleneck bar).
	if rng.Bool(c.MemSizeSaturationProb) {
		level.MemSizePct = 99.6
	}
	level.Clamp()

	// Active fraction (Fig. 6a structure by category).
	var af float64
	switch cat {
	case trace.Development:
		af = g.lv.activeDev.Sample(rng)
	case trace.IDE:
		af = g.lv.activeIDE.Sample(rng)
	default:
		if rng.Bool(c.LowActiveFracMatureExpl) {
			af = g.lv.activeLowME.Sample(rng)
		} else {
			af = g.lv.activeHi.Sample(rng)
		}
	}

	// Saturation bursts with the Fig. 8b correlation structure.
	smB := rng.Bool(c.BurstSMProb)
	var rxB bool
	if smB {
		rxB = rng.Bool(c.BurstRxGivenSM)
	} else {
		// Marginal consistency: P(rx) = P(rx|sm)P(sm) + p(1-P(sm)).
		p := (c.BurstRxProb - c.BurstRxGivenSM*c.BurstSMProb) / (1 - c.BurstSMProb)
		rxB = rng.Bool(clampF(p, 0, 1))
	}
	var txB bool
	if rxB {
		txB = rng.Bool(c.BurstTxGivenRx)
	} else {
		p := (c.BurstTxProb - c.BurstTxGivenRx*c.BurstRxProb) / (1 - c.BurstRxProb)
		txB = rng.Bool(clampF(p, 0, 1))
	}

	// Phase synthesis, one profile per GPU. In 40 % of multi-GPU jobs half
	// or more of the GPUs never wake up (Fig. 14a); the active GPUs share
	// the level up to a small jitter (Fig. 14b).
	idleGPUs := 0
	if spec.NumGPUs > 1 && rng.Bool(c.IdleGPUJobFrac) {
		lo := (spec.NumGPUs + 1) / 2
		idleGPUs = lo + rng.Intn(spec.NumGPUs-lo)
	}
	cycles := clampF(spec.RunSec/c.MeanCycleSec, 1, float64(c.MaxCycles))
	for gi := 0; gi < spec.NumGPUs; gi++ {
		if gi >= spec.NumGPUs-idleGPUs {
			spec.Profiles = append(spec.Profiles, IdleProfile(spec.RunSec, 0.5+1.5*rng.Float64()))
			continue
		}
		lvl := level
		jitter := math.Exp(0.05 * rng.NormFloat64())
		lvl.SMPct *= jitter
		lvl.MemPct *= jitter
		lvl.Clamp()
		if lvl.SMPct > 97 {
			lvl.SMPct = 97
		}
		phases := SynthesizePhases(PhaseParams{
			DurSec:      spec.RunSec,
			ActiveFrac:  af,
			Level:       lvl,
			MeanCycles:  cycles,
			SigmaActive: c.SigmaActive,
			SigmaIdle:   c.SigmaIdle,
			LevelJitter: c.LevelJitter,
			SMBurst:     smB && gi == 0,
			TxBurst:     txB && gi == 0,
			RxBurst:     rxB && gi == 0,
		}, rng)
		prof, err := NewProfile(phases, c.SampleNoisePct)
		if err != nil {
			// SynthesizePhases guarantees positive-duration phases.
			panic(err)
		}
		spec.Profiles = append(spec.Profiles, prof)
	}
	return spec
}

// drawGPUCount draws a multi-GPU size within the user's cap. Two-GPU jobs
// dominate; 3–8 GPU jobs are uncommon and 9+ rare (Fig. 13a).
func drawGPUCount(maxGPUs int, rng *dist.RNG) int {
	if maxGPUs <= 2 {
		return 2
	}
	u := rng.Float64()
	switch {
	case maxGPUs <= 8:
		switch {
		case u < 0.72:
			return 2
		case u < 0.92:
			return 3 + rng.Intn(2) // 3-4
		default:
			return 5 + rng.Intn(4) // 5-8
		}
	default:
		switch {
		case u < 0.55:
			return 2
		case u < 0.85:
			return 3 + rng.Intn(6) // 3-8
		default:
			n := 9 + rng.Intn(24) // 9-32
			if n > maxGPUs {
				n = maxGPUs
			}
			return n
		}
	}
}

// cpuJob synthesizes one CPU-only job for user u.
func (g *Generator) cpuJob(u *User, rng *dist.RNG) JobSpec {
	c := g.cfg.Calib
	run := dist.LognormalFromMedianQuartile(c.CPURunMedianMin, c.CPURunQ75Min)
	spec := JobSpec{
		User:      u.Index,
		Category:  trace.Mature,
		Interface: trace.Batch,
		Exit:      trace.ExitSuccess,
		RunSec:    clampF(run.Sample(rng), 0.1, 1440) * 60,
		LimitSec:  24 * 3600,
	}
	if rng.Bool(0.1) {
		spec.Interface = trace.Other
	}
	if rng.Bool(0.06) {
		spec.Exit = trace.ExitFailed
	}
	if rng.Bool(c.CPUExclusiveFrac) {
		// Whole-node reservations: "CPU jobs usually request all cores and
		// full memory of the nodes" (§III).
		nodes := 1
		if rng.Bool(0.25) {
			nodes = 2 + rng.Intn(3)
		}
		spec.Exclusive = true
		spec.Cores = nodes * 40
		spec.MemGB = float64(nodes) * 384
	} else {
		spec.Cores = 4 + rng.Intn(36)
		spec.MemGB = float64(8 + rng.Intn(256))
	}
	return spec
}
