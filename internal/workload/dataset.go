package workload

import (
	"math"

	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// BuildDataset assembles a trace.Dataset from specs along the analytic path:
// GPU summaries are computed in closed form from each profile, and queue
// waits are drawn from the calibrated wait distributions (Fig. 3b, §V). The
// discrete-event path (internal/slurm) produces waits from first principles
// instead; this path exists so the utilization analyses can run at full
// paper scale cheaply.
func (g *Generator) BuildDataset(specs []JobSpec) *trace.Dataset {
	c := g.cfg.Calib
	ds := trace.NewDataset(g.cfg.DurationDays)
	rng := dist.New(g.cfg.Seed ^ 0xA5A5A5A5DEADBEEF)
	hostModel := DefaultHostLoadModel()

	gpuSlow := dist.LognormalFromMedianQuartile(c.GPUWaitSlowMedianSec, c.GPUWaitSlowQ75Sec)
	cpuSlow := dist.LognormalFromMedianQuartile(c.CPUWaitSlowMedianSec, c.CPUWaitSlowQ75Sec)

	for i := range specs {
		s := &specs[i]
		rec := trace.JobRecord{
			JobID:       s.ID,
			User:        s.User,
			Interface:   s.Interface,
			Exit:        s.Exit,
			SubmitSec:   s.SubmitSec,
			RunSec:      s.RunSec,
			LimitSec:    s.LimitSec,
			NumGPUs:     s.NumGPUs,
			CoresPerGPU: s.CoresPerGPU,
			Cores:       s.Cores,
			MemGB:       s.MemGB,
		}
		rec.HostCPU = hostModel.HostLoadDigest(s)
		if s.IsGPU() {
			rec.WaitSec = g.sampleGPUWait(s.NumGPUs, rng, gpuSlow)
			rec.MemGB = s.MemGBPerGPU * float64(s.NumGPUs)
			for _, p := range s.Profiles {
				rec.PerGPU = append(rec.PerGPU, p.Summaries(g.cfg.GPUSpec, g.cfg.PowerModel))
			}
			rec.FinalizeGPUSummary()
		} else {
			rec.WaitSec = g.sampleCPUWait(rng, cpuSlow)
		}
		ds.Add(rec)
	}
	g.attachSeries(ds, specs)
	return ds
}

// sampleGPUWait draws one GPU-job queue wait. Multi-GPU jobs are scheduled
// with high priority (§V: their median waits are no longer than single-GPU
// jobs').
func (g *Generator) sampleGPUWait(numGPUs int, rng *dist.RNG, slow dist.Lognormal) float64 {
	c := g.cfg.Calib
	var w float64
	if rng.Bool(c.GPUWaitFastFrac) {
		w = dist.Exponential{Mean: c.GPUWaitFastMeanSec}.Sample(rng)
	} else {
		w = slow.Sample(rng)
	}
	if numGPUs > 1 {
		w *= c.MultiGPUWaitFactor
	}
	return w
}

// sampleCPUWait draws one CPU-job queue wait (longer: whole-node requests
// must drain nodes first).
func (g *Generator) sampleCPUWait(rng *dist.RNG, slow dist.Lognormal) float64 {
	c := g.cfg.Calib
	if rng.Bool(c.CPUWaitFastFrac) {
		return dist.Exponential{Mean: c.CPUWaitFastMeanSec}.Sample(rng)
	}
	return slow.Sample(rng)
}

// attachSeries generates the detailed-monitoring subset: TimeSeriesJobs GPU
// jobs spread evenly over the population, sampled from their profiles at the
// configured cadence (coarsened for very long jobs to bound memory).
func (g *Generator) attachSeries(ds *trace.Dataset, specs []JobSpec) {
	want := g.cfg.TimeSeriesJobs
	if want <= 0 {
		return
	}
	// Candidates: analysis-eligible GPU jobs, in submission order.
	var cands []*JobSpec
	for i := range specs {
		if specs[i].IsGPU() && specs[i].RunSec >= trace.MinGPUJobRunSec {
			cands = append(cands, &specs[i])
		}
	}
	if len(cands) == 0 {
		return
	}
	stride := len(cands) / want
	if stride < 1 {
		stride = 1
	}
	taken := 0
	for i := 0; i < len(cands) && taken < want; i += stride {
		s := cands[i]
		ds.AttachSeries(g.SampleSeries(s))
		taken++
	}
}

// SampleSeries runs the sampler over every GPU of one job, producing its
// detailed time series. The cadence is the configured interval, stretched
// when the job would otherwise exceed MaxSeriesSamples.
func (g *Generator) SampleSeries(s *JobSpec) *trace.TimeSeries {
	interval := g.cfg.TimeSeriesIntervalSec
	if max := g.cfg.MaxSeriesSamples; max > 0 {
		if n := s.RunSec / interval; n > float64(max) {
			interval = s.RunSec / float64(max)
		}
	}
	ts := &trace.TimeSeries{JobID: s.ID, IntervalSec: interval}
	rng := dist.New(g.cfg.Seed ^ uint64(s.ID)*0x2545F4914F6CDD1D)
	n := int(math.Floor(s.RunSec / interval))
	if n < 1 {
		n = 1
	}
	for _, p := range s.Profiles {
		stream := make([]metrics.Sample, n)
		for k := 0; k < n; k++ {
			t := (float64(k) + 0.5) * interval
			u := p.SampleAt(t, rng)
			stream[k] = metrics.Sample{
				TimeSec: t,
				Values: [metrics.NumMetrics]float64{
					metrics.SMUtil:  u.SMPct,
					metrics.MemUtil: u.MemPct,
					metrics.MemSize: u.MemSizePct,
					metrics.PCIeTx:  u.PCIeTxPct,
					metrics.PCIeRx:  u.PCIeRxPct,
					metrics.Power:   g.cfg.PowerModel.Watts(g.cfg.GPUSpec, u),
				},
			}
		}
		ts.PerGPU = append(ts.PerGPU, stream)
	}
	return ts
}
