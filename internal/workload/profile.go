// Package workload synthesizes the Supercloud job population: a 191-user
// community with heavy-tailed activity, four algorithm-development life-cycle
// stages (mature / exploratory / development / IDE), phase-structured GPU
// utilization profiles with irregular active/idle alternation, multi-GPU jobs
// with the idle-GPU pathology, and a submission process with conference-
// deadline surges.
//
// Every marginal the generator produces is calibrated against the paper's
// published statistics; the Calibration struct carries the knobs and
// documents which figure each one serves. The calibration tests in this
// package verify the targets before any experiment consumes generated data.
package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/gpu"
	"repro/internal/metrics"
)

// Phase is one homogeneous interval of a GPU's activity during a job: either
// an idle stretch (host-only work: data staging, user think time) or an
// active stretch with a characteristic utilization level. The paper's Fig. 6
// shows jobs alternating irregularly between the two.
type Phase struct {
	// Level is the target utilization during the phase. For idle phases the
	// compute components are zero but MemSizePct persists (frameworks hold
	// their allocations across idle stretches) and PCIe traffic continues
	// (idle GPU phases are when input pipelines stage data).
	Level  gpu.Utilization
	DurSec float64
	Active bool
	// Burst flags mark a saturation spike within the phase (the first
	// burstFraction of the phase runs the flagged metric at 100 %), the
	// mechanism behind the paper's Fig. 7b/8 bottleneck observations.
	SMBurst, TxBurst, RxBurst bool
}

// burstFraction is the share of a bursting phase spent at saturation.
const burstFraction = 0.1

// Profile is the complete utilization trajectory of one GPU over one job:
// an ordered phase list plus a multiplicative noise amplitude applied when
// the profile is sampled. Profiles are immutable after construction.
type Profile struct {
	phases []Phase
	// noisePct is the stddev of additive per-sample Gaussian noise, in
	// percentage points.
	noisePct float64
	// cum[i] is the end time of phase i, for O(log n) time lookup.
	cum []float64
}

// NewProfile builds a profile from phases. Phases with non-positive duration
// are rejected: they would make time lookup ambiguous.
func NewProfile(phases []Phase, noisePct float64) (*Profile, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: profile needs at least one phase")
	}
	p := &Profile{phases: append([]Phase(nil), phases...), noisePct: noisePct}
	var t float64
	for i, ph := range p.phases {
		if ph.DurSec <= 0 {
			return nil, fmt.Errorf("workload: phase %d has non-positive duration %v", i, ph.DurSec)
		}
		t += ph.DurSec
		p.cum = append(p.cum, t)
	}
	return p, nil
}

// TotalSec returns the profile's duration.
func (p *Profile) TotalSec() float64 { return p.cum[len(p.cum)-1] }

// Phases returns the phase list (shared; callers must not mutate).
func (p *Profile) Phases() []Phase { return p.phases }

// ActiveFraction returns the share of time spent in active phases, the
// quantity of Fig. 6a.
func (p *Profile) ActiveFraction() float64 {
	var active float64
	for _, ph := range p.phases {
		if ph.Active {
			active += ph.DurSec
		}
	}
	return active / p.TotalSec()
}

// phaseAt returns the phase covering time t (clamped to the profile span)
// and the offset of t within it.
func (p *Profile) phaseAt(t float64) (Phase, float64) {
	if t < 0 {
		t = 0
	}
	if t >= p.TotalSec() {
		t = p.TotalSec() - 1e-9
	}
	i := sort.SearchFloat64s(p.cum, t)
	if i >= len(p.phases) {
		i = len(p.phases) - 1
	}
	start := 0.0
	if i > 0 {
		start = p.cum[i-1]
	}
	return p.phases[i], t - start
}

// LevelAt returns the noiseless utilization at time t, with burst windows
// applied. This is the deterministic component that both the sampler and the
// analytic summary agree on.
func (p *Profile) LevelAt(t float64) gpu.Utilization {
	ph, off := p.phaseAt(t)
	u := ph.Level
	if !ph.Active {
		u.SMPct, u.MemPct = 0, 0
	}
	if ph.Active && off < ph.DurSec*burstFraction {
		if ph.SMBurst {
			u.SMPct = 100
		}
		if ph.TxBurst {
			u.PCIeTxPct = 100
		}
		if ph.RxBurst {
			u.PCIeRxPct = 100
		}
	}
	return u
}

// SampleAt returns the observed utilization at time t: the level plus
// relative Gaussian sampling noise drawn from rng (noisePct is the noise
// stddev as a percentage of the current level, so quiet metrics stay quiet
// in proportion). Idle phases are observed noiselessly for the compute
// metrics — an idle GPU reads exactly 0 in nvidia-smi — which is what makes
// the paper's phase segmentation of real traces possible.
func (p *Profile) SampleAt(t float64, rng *dist.RNG) gpu.Utilization {
	u := p.LevelAt(t)
	if p.noisePct > 0 {
		rel := p.noisePct / 100
		jitter := func(v float64) float64 {
			if v <= 0 || v >= 100 {
				return v
			}
			return v * (1 + rel*rng.NormFloat64())
		}
		u.SMPct = jitter(u.SMPct)
		u.MemPct = jitter(u.MemPct)
		u.MemSizePct = u.MemSizePct * (1 + 0.3*rel*rng.NormFloat64())
		u.PCIeTxPct = jitter(u.PCIeTxPct)
		u.PCIeRxPct = jitter(u.PCIeRxPct)
	}
	u.Clamp()
	return u
}

// Summaries computes the per-metric min/mean/max digest of the profile
// analytically (duration-weighted over phases, bursts included), evaluating
// power through the given model and spec. This is the fast path used when
// generating the 47 k-job dataset without running the sampler.
func (p *Profile) Summaries(spec gpu.Spec, pm gpu.PowerModel) metrics.MetricSummaries {
	var out metrics.MetricSummaries
	total := p.TotalSec()
	first := true
	fold := func(u gpu.Utilization, dur float64) {
		vals := [metrics.NumMetrics]float64{
			metrics.SMUtil:  u.SMPct,
			metrics.MemUtil: u.MemPct,
			metrics.MemSize: u.MemSizePct,
			metrics.PCIeTx:  u.PCIeTxPct,
			metrics.PCIeRx:  u.PCIeRxPct,
			metrics.Power:   pm.Watts(spec, u),
		}
		for m := metrics.Metric(0); m < metrics.NumMetrics; m++ {
			v := vals[m]
			if first {
				out[m].Min, out[m].Max = v, v
			}
			if v < out[m].Min {
				out[m].Min = v
			}
			if v > out[m].Max {
				out[m].Max = v
			}
			out[m].Mean += v * dur / total
		}
		first = false
	}
	for _, ph := range p.phases {
		base := ph.Level
		if !ph.Active {
			base.SMPct, base.MemPct = 0, 0
			fold(base, ph.DurSec)
			continue
		}
		if ph.SMBurst || ph.TxBurst || ph.RxBurst {
			burst := base
			if ph.SMBurst {
				burst.SMPct = 100
			}
			if ph.TxBurst {
				burst.PCIeTxPct = 100
			}
			if ph.RxBurst {
				burst.PCIeRxPct = 100
			}
			fold(burst, ph.DurSec*burstFraction)
			fold(base, ph.DurSec*(1-burstFraction))
			continue
		}
		fold(base, ph.DurSec)
	}
	return out
}

// IdleProfile returns a profile that never uses the GPU, holding only the
// given memory allocation — the shape of the idle GPUs the paper finds in
// 40 % of multi-GPU jobs (Fig. 14).
func IdleProfile(durSec, memSizePct float64) *Profile {
	p, err := NewProfile([]Phase{{
		DurSec: durSec,
		Active: false,
		Level:  gpu.Utilization{MemSizePct: memSizePct},
	}}, 0)
	if err != nil {
		// A single positive-duration phase cannot fail to validate.
		panic(err)
	}
	return p
}

// PhaseParams controls SynthesizePhases.
type PhaseParams struct {
	DurSec      float64         // total profile duration
	ActiveFrac  float64         // target active-time share (Fig. 6a)
	Level       gpu.Utilization // characteristic active-phase level
	MeanCycles  float64         // expected number of active/idle cycles
	SigmaActive float64         // log-sigma of active interval lengths (Fig. 6b CoV)
	SigmaIdle   float64         // log-sigma of idle interval lengths
	LevelJitter float64         // per-phase multiplicative level jitter (log-sigma), Fig. 7a
	SMBurst     bool            // job saturates SM at some point (Fig. 7b/8)
	TxBurst     bool
	RxBurst     bool
}

// SynthesizePhases builds an irregular phase alternation realizing the
// requested active fraction exactly, with interval lengths drawn lognormally
// (their CoV is governed by the sigma parameters) and per-phase level jitter.
// The bursts, when requested, are attached to randomly chosen active phases.
func SynthesizePhases(p PhaseParams, rng *dist.RNG) []Phase {
	if p.DurSec <= 0 {
		return nil
	}
	af := p.ActiveFrac
	if af < 0 {
		af = 0
	}
	if af > 1 {
		af = 1
	}
	cycles := int(p.MeanCycles + 0.5)
	if cycles < 1 {
		cycles = 1
	}
	activeTotal := af * p.DurSec
	idleTotal := p.DurSec - activeTotal
	// Draw raw interval lengths, then scale each family to its exact budget.
	actRaw := make([]float64, cycles)
	idlRaw := make([]float64, cycles)
	var actSum, idlSum float64
	for i := 0; i < cycles; i++ {
		actRaw[i] = math.Exp(p.SigmaActive * rng.NormFloat64())
		idlRaw[i] = math.Exp(p.SigmaIdle * rng.NormFloat64())
		actSum += actRaw[i]
		idlSum += idlRaw[i]
	}
	var phases []Phase
	// Spread bursts over up to three distinct active phases.
	burstAt := -1
	if p.SMBurst || p.TxBurst || p.RxBurst {
		burstAt = rng.Intn(cycles)
	}
	for i := 0; i < cycles; i++ {
		if idleTotal > 0 && idlSum > 0 {
			if d := idleTotal * idlRaw[i] / idlSum; d > 0 {
				phases = append(phases, Phase{DurSec: d, Active: false,
					Level: gpu.Utilization{
						MemSizePct: p.Level.MemSizePct,
						PCIeTxPct:  p.Level.PCIeTxPct,
						PCIeRxPct:  p.Level.PCIeRxPct,
					}})
			}
		}
		if activeTotal > 0 && actSum > 0 {
			d := activeTotal * actRaw[i] / actSum
			if d <= 0 {
				continue
			}
			lvl := p.Level
			if p.LevelJitter > 0 {
				j := math.Exp(p.LevelJitter * rng.NormFloat64())
				lvl.SMPct *= j
				lvl.MemPct *= j
				jm := math.Exp(p.LevelJitter * 0.6 * rng.NormFloat64())
				lvl.MemSizePct *= jm
				lvl.PCIeTxPct *= math.Exp(p.LevelJitter * rng.NormFloat64())
				lvl.PCIeRxPct *= math.Exp(p.LevelJitter * rng.NormFloat64())
			}
			lvl.Clamp()
			// Jittered levels stay below saturation: only explicit bursts
			// register as Fig. 7b/8 bottlenecks, not clamping artifacts.
			capBelowSaturation(&lvl)
			ph := Phase{DurSec: d, Active: true, Level: lvl}
			if i == burstAt {
				ph.SMBurst, ph.TxBurst, ph.RxBurst = p.SMBurst, p.TxBurst, p.RxBurst
			}
			phases = append(phases, ph)
		}
	}
	if len(phases) == 0 {
		phases = []Phase{{DurSec: p.DurSec, Active: false,
			Level: gpu.Utilization{MemSizePct: p.Level.MemSizePct}}}
	}
	return phases
}

// capBelowSaturation bounds compute and PCIe levels at 97 %: production
// kernels rarely pin the exact ceiling outside genuine saturation bursts.
func capBelowSaturation(u *gpu.Utilization) {
	const cap = 97
	if u.SMPct > cap {
		u.SMPct = cap
	}
	if u.MemPct > cap {
		u.MemPct = cap
	}
	if u.PCIeTxPct > cap {
		u.PCIeTxPct = cap
	}
	if u.PCIeRxPct > cap {
		u.PCIeRxPct = cap
	}
}
