package workload

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func TestReplayRoundTripSchedulerFields(t *testing.T) {
	_, specs, ds := calibDataset(t)
	replayed := ReplaySpecs(ds, 99)
	if len(replayed) != len(specs) {
		t.Fatalf("replayed %d of %d jobs", len(replayed), len(specs))
	}
	byID := map[int64]*JobSpec{}
	for i := range specs {
		byID[specs[i].ID] = &specs[i]
	}
	for i := range replayed {
		r := &replayed[i]
		orig := byID[r.ID]
		if orig == nil {
			t.Fatalf("replayed unknown job %d", r.ID)
		}
		if r.SubmitSec != orig.SubmitSec || r.RunSec != orig.RunSec ||
			r.NumGPUs != orig.NumGPUs || r.User != orig.User ||
			r.Interface != orig.Interface || r.Exit != orig.Exit {
			t.Fatalf("scheduler fields diverged for job %d", r.ID)
		}
		if r.IsGPU() && len(r.Profiles) != r.NumGPUs {
			t.Fatalf("job %d: %d profiles for %d GPUs", r.ID, len(r.Profiles), r.NumGPUs)
		}
		if r.Category != orig.Category {
			t.Fatalf("job %d category %v, want %v", r.ID, r.Category, orig.Category)
		}
	}
}

func TestReplayPreservesUtilizationMeans(t *testing.T) {
	_, _, ds := calibDataset(t)
	replayed := ReplaySpecs(ds, 99)
	spec := gpu.V100()
	pm := gpu.DefaultPowerModel()
	byID := map[int64]*trace.JobRecord{}
	for i := range ds.Jobs {
		byID[ds.Jobs[i].JobID] = &ds.Jobs[i]
	}
	var absErr, n float64
	for i := range replayed {
		r := &replayed[i]
		if !r.IsGPU() || r.RunSec < trace.MinGPUJobRunSec {
			continue
		}
		orig := byID[r.ID]
		var got metrics.MetricSummaries
		per := make([]metrics.MetricSummaries, len(r.Profiles))
		for g, p := range r.Profiles {
			per[g] = p.Summaries(spec, pm)
		}
		got = metrics.Averaged(per)
		absErr += math.Abs(got[metrics.SMUtil].Mean - orig.GPU[metrics.SMUtil].Mean)
		n++
	}
	if n == 0 {
		t.Fatal("nothing replayed")
	}
	if mae := absErr / n; mae > 2 {
		t.Fatalf("replayed SM mean MAE = %v pct-points", mae)
	}
}

func TestReplayPreservesBottlenecks(t *testing.T) {
	// A saturating digest must reconstruct with a saturating burst.
	var d metrics.MetricSummaries
	d[metrics.SMUtil] = metrics.SummaryRecord{Min: 0, Mean: 30, Max: 100}
	d[metrics.MemUtil] = metrics.SummaryRecord{Min: 0, Mean: 5, Max: 20}
	d[metrics.MemSize] = metrics.SummaryRecord{Min: 10, Mean: 10, Max: 10}
	p := ProfileFromSummary(d, 3600, dist.New(1))
	s := p.Summaries(gpu.V100(), gpu.DefaultPowerModel())
	if s[metrics.SMUtil].Max < 99 {
		t.Fatalf("reconstructed max SM = %v, want saturation", s[metrics.SMUtil].Max)
	}
}

func TestReplayIdleDigest(t *testing.T) {
	var d metrics.MetricSummaries
	d[metrics.MemSize] = metrics.SummaryRecord{Min: 2, Mean: 2, Max: 2}
	p := ProfileFromSummary(d, 600, dist.New(1))
	if p.ActiveFraction() != 0 {
		t.Fatalf("idle digest produced active profile")
	}
	s := p.Summaries(gpu.V100(), gpu.DefaultPowerModel())
	if s[metrics.MemSize].Mean != 2 {
		t.Fatalf("memsize lost: %v", s[metrics.MemSize].Mean)
	}
}

func TestReplayFromCSVRoundTrip(t *testing.T) {
	// The CSV path drops per-GPU digests; replay must still produce
	// schedulable specs with per-GPU profiles.
	cfg := ScaledConfig(0.005)
	cfg.Seed = 3
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.BuildDataset(g.GenerateSpecs())
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadCSV(&buf, cfg.DurationDays)
	if err != nil {
		t.Fatal(err)
	}
	replayed := ReplaySpecs(back, 1)
	if len(replayed) != len(ds.Jobs) {
		t.Fatalf("replayed %d of %d", len(replayed), len(ds.Jobs))
	}
	for i := range replayed {
		r := &replayed[i]
		if r.IsGPU() && len(r.Profiles) != r.NumGPUs {
			t.Fatalf("job %d profiles missing after CSV replay", r.ID)
		}
		if i > 0 && r.SubmitSec < replayed[i-1].SubmitSec {
			t.Fatal("replayed specs not sorted")
		}
	}
}
