package workload

import (
	"sort"

	"repro/internal/dist"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// ReplaySpecs reconstructs schedulable job specs from a recorded dataset, so
// a trace written by tracegen (or, with a converter, a real Slurm/nvidia-smi
// export) can be replayed through the discrete-event scheduler under
// different policies. Scheduler-side fields copy over exactly; utilization
// profiles are re-synthesized from each GPU's min/mean/max digest — the only
// information production monitoring keeps — so replayed phase structure is
// approximate while per-job means are preserved.
func ReplaySpecs(ds *trace.Dataset, seed uint64) []JobSpec {
	rng := dist.New(seed ^ 0x5EED5EED5EED5EED)
	specs := make([]JobSpec, 0, len(ds.Jobs))
	for i := range ds.Jobs {
		j := &ds.Jobs[i]
		sp := JobSpec{
			ID:          j.JobID,
			User:        j.User,
			Interface:   j.Interface,
			Exit:        j.Exit,
			SubmitSec:   j.SubmitSec,
			RunSec:      j.RunSec,
			LimitSec:    j.LimitSec,
			NumGPUs:     j.NumGPUs,
			CoresPerGPU: j.CoresPerGPU,
			Cores:       j.Cores,
			MemGB:       j.MemGB,
			Exclusive:   !j.IsGPU() && j.Cores >= 40,
		}
		if j.LimitSec <= 0 {
			sp.LimitSec = 24 * 3600
		}
		if sp.RunSec > sp.LimitSec {
			sp.LimitSec = sp.RunSec
		}
		if j.IsGPU() {
			sp.Category = classifyForReplay(j)
			if sp.CoresPerGPU == 0 {
				sp.CoresPerGPU = 4
			}
			if j.NumGPUs > 0 {
				sp.MemGBPerGPU = j.MemGB / float64(j.NumGPUs)
			}
			if sp.MemGBPerGPU <= 0 {
				sp.MemGBPerGPU = 16
			}
			digests := j.PerGPU
			if len(digests) != j.NumGPUs {
				// Only the averaged digest survived (CSV path): give every
				// GPU the same reconstructed profile.
				digests = make([]metrics.MetricSummaries, j.NumGPUs)
				for g := range digests {
					digests[g] = j.GPU
				}
			}
			for _, d := range digests {
				sp.Profiles = append(sp.Profiles, ProfileFromSummary(d, j.RunSec, rng))
			}
		}
		specs = append(specs, sp)
	}
	sort.Slice(specs, func(a, b int) bool { return specs[a].SubmitSec < specs[b].SubmitSec })
	return specs
}

// classifyForReplay mirrors lifecycle.Classify without importing it (that
// package sits above workload in the dependency order).
func classifyForReplay(j *trace.JobRecord) trace.Category {
	switch j.Exit {
	case trace.ExitSuccess:
		return trace.Mature
	case trace.ExitCancelled:
		return trace.Exploratory
	case trace.ExitTimeout:
		if j.Interface == trace.Interactive {
			return trace.IDE
		}
		return trace.Development
	default:
		return trace.Development
	}
}

// ProfileFromSummary synthesizes a phase-structured profile whose
// duration-weighted means reproduce a recorded min/mean/max digest. The
// reconstruction picks the active level between the recorded mean and max,
// then solves the active fraction so the overall mean matches; saturation
// digests (max at capacity) get a burst so bottleneck analyses survive the
// round trip.
func ProfileFromSummary(d metrics.MetricSummaries, runSec float64, rng *dist.RNG) *Profile {
	sm := d[metrics.SMUtil]
	mem := d[metrics.MemUtil]
	msz := d[metrics.MemSize]
	tx := d[metrics.PCIeTx]
	rx := d[metrics.PCIeRx]

	if sm.Mean < 0.5 && mem.Mean < 0.5 {
		return IdleProfile(runSec, msz.Mean)
	}
	// Active level: midway between mean and max, bounded away from zero so
	// the implied active fraction stays <= 1.
	level := (sm.Mean + sm.Max) / 2
	if level < sm.Mean {
		level = sm.Mean
	}
	if level <= 0 {
		level = 1
	}
	af := sm.Mean / level
	if af > 1 {
		af = 1
	}
	memLevel := 0.0
	if af > 0 {
		memLevel = mem.Mean / af
	}
	if memLevel > 100 {
		memLevel = 100
	}
	phases := SynthesizePhases(PhaseParams{
		DurSec:     runSec,
		ActiveFrac: af,
		Level: gpu.Utilization{
			SMPct:      level,
			MemPct:     memLevel,
			MemSizePct: msz.Mean,
			PCIeTxPct:  tx.Mean,
			PCIeRxPct:  rx.Mean,
		},
		MeanCycles:  clampF(runSec/180, 1, 48),
		SigmaActive: 1.35,
		SigmaIdle:   1.05,
		LevelJitter: 0, // exact mean reconstruction: no per-phase jitter
		SMBurst:     sm.Max >= 99,
		TxBurst:     tx.Max >= 99,
		RxBurst:     rx.Max >= 99,
	}, rng)
	p, err := NewProfile(phases, 0)
	if err != nil {
		// SynthesizePhases guarantees at least one positive phase.
		panic(err)
	}
	return p
}
