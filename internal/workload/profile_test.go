package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/gpu"
	"repro/internal/metrics"
)

func mustProfile(t *testing.T, phases []Phase, noise float64) *Profile {
	t.Helper()
	p, err := NewProfile(phases, noise)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func twoPhase(t *testing.T) *Profile {
	return mustProfile(t, []Phase{
		{DurSec: 60, Active: false, Level: gpu.Utilization{MemSizePct: 10}},
		{DurSec: 40, Active: true, Level: gpu.Utilization{SMPct: 50, MemPct: 10, MemSizePct: 10, PCIeTxPct: 20, PCIeRxPct: 30}},
	}, 0)
}

func TestProfileBasics(t *testing.T) {
	p := twoPhase(t)
	if p.TotalSec() != 100 {
		t.Fatalf("total = %v", p.TotalSec())
	}
	if af := p.ActiveFraction(); math.Abs(af-0.4) > 1e-12 {
		t.Fatalf("active fraction = %v", af)
	}
	// During the idle phase compute metrics are zero but memory persists.
	u := p.LevelAt(30)
	if u.SMPct != 0 || u.MemPct != 0 || u.MemSizePct != 10 {
		t.Fatalf("idle level = %+v", u)
	}
	if u := p.LevelAt(80); u.SMPct != 50 {
		t.Fatalf("active level = %+v", u)
	}
	// Out-of-range times clamp.
	if u := p.LevelAt(-5); u.SMPct != 0 {
		t.Fatalf("pre-start level = %+v", u)
	}
	if u := p.LevelAt(1e9); u.SMPct != 50 {
		t.Fatalf("post-end level = %+v", u)
	}
}

func TestProfileValidation(t *testing.T) {
	if _, err := NewProfile(nil, 0); err == nil {
		t.Fatal("empty profile accepted")
	}
	if _, err := NewProfile([]Phase{{DurSec: 0}}, 0); err == nil {
		t.Fatal("zero-duration phase accepted")
	}
}

func TestBurstWindow(t *testing.T) {
	p := mustProfile(t, []Phase{
		{DurSec: 100, Active: true, Level: gpu.Utilization{SMPct: 30}, SMBurst: true, RxBurst: true},
	}, 0)
	// First 10 % of the phase saturates.
	u := p.LevelAt(5)
	if u.SMPct != 100 || u.PCIeRxPct != 100 {
		t.Fatalf("burst level = %+v", u)
	}
	if u := p.LevelAt(50); u.SMPct != 30 || u.PCIeRxPct != 0 {
		t.Fatalf("post-burst level = %+v", u)
	}
}

func TestAnalyticSummaries(t *testing.T) {
	p := twoPhase(t)
	s := p.Summaries(gpu.V100(), gpu.DefaultPowerModel())
	// Mean SM = 0.4 × 50 = 20.
	if math.Abs(s[metrics.SMUtil].Mean-20) > 1e-9 {
		t.Fatalf("mean SM = %v, want 20", s[metrics.SMUtil].Mean)
	}
	if s[metrics.SMUtil].Min != 0 || s[metrics.SMUtil].Max != 50 {
		t.Fatalf("SM min/max = %v/%v", s[metrics.SMUtil].Min, s[metrics.SMUtil].Max)
	}
	// Memory size persists across phases.
	if s[metrics.MemSize].Min != 10 || s[metrics.MemSize].Max != 10 {
		t.Fatalf("memsize = %+v", s[metrics.MemSize])
	}
	// Power: idle floor during idle phase, above floor during active.
	if s[metrics.Power].Min != 25 {
		t.Fatalf("power min = %v, want idle 25", s[metrics.Power].Min)
	}
	if s[metrics.Power].Max <= 25 || s[metrics.Power].Mean <= 25 {
		t.Fatalf("power summary = %+v", s[metrics.Power])
	}
	for m := metrics.Metric(0); m < metrics.NumMetrics; m++ {
		if !s[m].Valid() {
			t.Fatalf("metric %v summary invalid: %+v", m, s[m])
		}
	}
}

func TestBurstRaisesAnalyticMax(t *testing.T) {
	p := mustProfile(t, []Phase{
		{DurSec: 100, Active: true, Level: gpu.Utilization{SMPct: 30}, SMBurst: true},
	}, 0)
	s := p.Summaries(gpu.V100(), gpu.DefaultPowerModel())
	if s[metrics.SMUtil].Max != 100 {
		t.Fatalf("burst SM max = %v, want 100", s[metrics.SMUtil].Max)
	}
	// Mean includes the 10 % burst window: 0.9×30 + 0.1×100 = 37.
	if math.Abs(s[metrics.SMUtil].Mean-37) > 1e-9 {
		t.Fatalf("burst SM mean = %v, want 37", s[metrics.SMUtil].Mean)
	}
}

func TestSampledAgreesWithAnalytic(t *testing.T) {
	p := mustProfile(t, []Phase{
		{DurSec: 600, Active: false, Level: gpu.Utilization{MemSizePct: 20}},
		{DurSec: 1400, Active: true, Level: gpu.Utilization{SMPct: 40, MemPct: 8, MemSizePct: 20, PCIeTxPct: 15, PCIeRxPct: 25}},
	}, 2)
	s := p.Summaries(gpu.V100(), gpu.DefaultPowerModel())
	rng := dist.New(9)
	var acc [metrics.NumMetrics]float64
	const n = 4000
	for k := 0; k < n; k++ {
		u := p.SampleAt(float64(k)*p.TotalSec()/n, rng)
		acc[metrics.SMUtil] += u.SMPct
		acc[metrics.MemUtil] += u.MemPct
		acc[metrics.MemSize] += u.MemSizePct
		acc[metrics.PCIeTx] += u.PCIeTxPct
		acc[metrics.PCIeRx] += u.PCIeRxPct
	}
	for _, m := range []metrics.Metric{metrics.SMUtil, metrics.MemUtil, metrics.MemSize, metrics.PCIeTx, metrics.PCIeRx} {
		got := acc[m] / n
		want := s[m].Mean
		if math.Abs(got-want) > 1+0.05*want {
			t.Fatalf("metric %v sampled mean %v vs analytic %v", m, got, want)
		}
	}
}

func TestIdleProfile(t *testing.T) {
	p := IdleProfile(300, 2)
	if p.ActiveFraction() != 0 {
		t.Fatal("idle profile has active time")
	}
	s := p.Summaries(gpu.V100(), gpu.DefaultPowerModel())
	if s[metrics.SMUtil].Max != 0 {
		t.Fatalf("idle profile SM max = %v", s[metrics.SMUtil].Max)
	}
	if s[metrics.MemSize].Mean != 2 {
		t.Fatalf("idle profile memsize = %v", s[metrics.MemSize].Mean)
	}
	if s[metrics.Power].Mean != 25 {
		t.Fatalf("idle profile power = %v, want idle floor", s[metrics.Power].Mean)
	}
}

func TestSynthesizePhasesActiveFraction(t *testing.T) {
	rng := dist.New(3)
	for _, af := range []float64{0.1, 0.5, 0.84, 1.0} {
		phases := SynthesizePhases(PhaseParams{
			DurSec: 3600, ActiveFrac: af, MeanCycles: 12,
			SigmaActive: 1.2, SigmaIdle: 1.0,
			Level: gpu.Utilization{SMPct: 40, MemSizePct: 10},
		}, rng)
		p := mustProfile(t, phases, 0)
		if math.Abs(p.TotalSec()-3600) > 1 {
			t.Fatalf("af=%v: total %v", af, p.TotalSec())
		}
		if got := p.ActiveFraction(); math.Abs(got-af) > 0.01 {
			t.Fatalf("af=%v: realized %v", af, got)
		}
	}
}

func TestSynthesizePhasesZeroActive(t *testing.T) {
	phases := SynthesizePhases(PhaseParams{
		DurSec: 100, ActiveFrac: 0, MeanCycles: 5,
		Level: gpu.Utilization{MemSizePct: 3},
	}, dist.New(1))
	p := mustProfile(t, phases, 0)
	if p.ActiveFraction() != 0 {
		t.Fatal("zero active fraction not honored")
	}
}

func TestSynthesizePhasesBurstAttached(t *testing.T) {
	phases := SynthesizePhases(PhaseParams{
		DurSec: 1000, ActiveFrac: 0.8, MeanCycles: 8,
		SigmaActive: 1, SigmaIdle: 1,
		Level:   gpu.Utilization{SMPct: 30},
		SMBurst: true,
	}, dist.New(5))
	found := false
	for _, ph := range phases {
		if ph.SMBurst {
			if !ph.Active {
				t.Fatal("burst on idle phase")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("requested burst not attached")
	}
}

// Property: synthesized phases always reconstruct the requested duration and
// active fraction, for any seed and parameters in range.
func TestSynthesizeProperty(t *testing.T) {
	f := func(seed uint64, afRaw, durRaw float64, cyclesRaw uint8) bool {
		af := math.Abs(math.Mod(afRaw, 1))
		dur := 60 + math.Abs(math.Mod(durRaw, 86400))
		cycles := float64(cyclesRaw%40) + 1
		phases := SynthesizePhases(PhaseParams{
			DurSec: dur, ActiveFrac: af, MeanCycles: cycles,
			SigmaActive: 1.3, SigmaIdle: 1.0, LevelJitter: 0.2,
			Level: gpu.Utilization{SMPct: 35, MemPct: 5, MemSizePct: 12},
		}, dist.New(seed))
		p, err := NewProfile(phases, 0)
		if err != nil {
			return false
		}
		if math.Abs(p.TotalSec()-dur) > 1e-6*dur+1e-6 {
			return false
		}
		return math.Abs(p.ActiveFraction()-af) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
