package workload

import (
	"fmt"

	"repro/internal/trace"
)

// Calibration carries every knob of the synthetic workload, each documented
// with the paper statistic it serves. DefaultCalibration returns values
// tuned so the end-to-end analyses land on the paper's published numbers
// (EXPERIMENTS.md records the comparison); the calibration tests in this
// package enforce tolerance bands around the most load-bearing targets.
type Calibration struct {
	// --- population (paper §II: 191 users, 74,820 jobs over 125 days) ---

	// GPUJobFraction is the share of all jobs that request GPUs
	// (47,120 analyzed GPU jobs + short ones of 74,820 total).
	GPUJobFraction float64
	// ShortGPUJobFraction is the share of GPU jobs under 30 s that the
	// analysis filter drops (they exist to exercise the filter).
	ShortGPUJobFraction float64
	// The user community splits into casual members with a handful of
	// submissions and a lognormal "regular" body; this two-class shape is
	// what reconciles the paper's trio of §IV concentration facts (median
	// user ≈ 36 jobs, top 5 % of users ≈ 44 % of jobs, top 20 % ≈ 83 %),
	// which no single Pareto can hit simultaneously.
	CasualUserFrac                float64 // share of casual users
	CasualJobsLow, CasualJobsHigh float64 // casual submission-weight range
	RegularMedianJobs             float64 // regular-user weight median
	RegularLogSigma               float64 // regular-user weight log-sigma

	// --- run times (Fig. 3a, Fig. 10, §VI medians) ---

	// UserRuntimeC and UserRuntimeBeta set a user's median run time in
	// minutes as C·jobs^(−Beta). The exponent is mild: user medians cluster
	// near the 30-minute job median. The paper's seemingly conflicting
	// 392-minute user-average (Fig. 10) emerges from the heavy within-user
	// tail (UserSigmaMean ≈ 2.5) truncated at the 24 h wall-clock limit —
	// the same mechanism that yields Fig. 11's 155 % run-time CoV and
	// Fig. 3a's 4/30/300-minute quartiles simultaneously.
	UserRuntimeC, UserRuntimeBeta float64
	// UserRuntimeLogSigma jitters the per-user median (log-space stddev).
	UserRuntimeLogSigma float64
	// UserSigmaMean/SD set each user's within-user run-time log-sigma;
	// ~1.1 yields the Fig. 11 median run-time CoV of ≈155 %.
	UserSigmaMean, UserSigmaSD float64
	// CategoryRuntimeFactor scales run times per life-cycle category
	// (§VI: mature median 36 min, exploratory 62 min).
	CategoryRuntimeFactor [trace.NumCategories]float64
	// MaxRunMinutes truncates the run-time tail ("as high as more than 20
	// hours", Fig. 3a).
	MaxRunMinutes float64
	// IDETimeoutShortProb is the probability an IDE session has the 12 h
	// limit rather than 24 h (§VI: "12 hours or 24 hours").
	IDETimeoutShortProb float64
	// MultiGPURuntimeFactor lengthens multi-GPU jobs so they reach ~50 % of
	// all GPU hours at 16 % of jobs (Fig. 13).
	MultiGPURuntimeFactor float64
	// ExplMultiBoost multiplies the multi-GPU probability for exploratory
	// jobs (hyper-parameter sweeps fan out), feeding their outsized GPU-hour
	// share (Fig. 15b).
	ExplMultiBoost float64
	// CPURunMedianMin/CPURunQ75Min calibrate CPU-job run times (Fig. 3a:
	// median 8 min).
	CPURunMedianMin, CPURunQ75Min float64

	// --- life-cycle categories (Fig. 15a: 60/18/19/3.5 %) ---

	// MatureShareBase/Slope/Exp map a user's activity rank to their mature-
	// job share: heavy users run mostly finalized code, occasional users
	// mostly explore (Fig. 17a: >50 % of users are <40 % mature).
	MatureShareBase, MatureShareSlope, MatureShareExp float64
	// MatureShareNoise is the per-user Gaussian jitter on that share.
	MatureShareNoise float64
	// NonMatureWeights split the non-mature remainder among exploratory,
	// development and IDE (global proportions 18 : 19 : 3.5).
	NonMatureWeights [3]float64

	// --- submission interfaces (Fig. 5: 1/30/4/65 %) ---

	// NonIDEInterfaceWeights are map-reduce/batch/interactive/other weights
	// for non-IDE jobs; IDE jobs are always interactive.
	NonIDEInterfaceWeights [trace.NumInterfaces]float64

	// --- GPU counts (Fig. 13, §V) ---

	// UserNeverMultiFrac is the share of users who never run multi-GPU jobs
	// (§V: 60 % of users ran at least one, so 40 % never did).
	UserNeverMultiFrac float64
	// UserMax8Frac and UserMax32Frac are the shares of users whose largest
	// jobs reach 3–8 and 9+ GPUs (§V: 13 % ≥3 GPUs, 5.2 % ≥9).
	UserMax8Frac, UserMax32Frac float64
	// MultiProbMax2/Max8/Max32 are per-job multi-GPU probabilities by user
	// class, tuned so that 16 % of all jobs are multi-GPU (Fig. 13a).
	MultiProbMax2, MultiProbMax8, MultiProbMax32 float64
	// IdleGPUJobFrac is the share of multi-GPU jobs with half or more of
	// their GPUs idle (Fig. 14a: ≈40 %).
	IdleGPUJobFrac float64

	// --- phases (Fig. 6) ---

	// LowActiveFracMatureExpl is the probability a mature/exploratory job is
	// nonetheless mostly idle (data-bound stages of otherwise busy jobs).
	LowActiveFracMatureExpl float64
	// MeanCycleSec sets the expected active/idle cycle length; SigmaActive
	// and SigmaIdle set the lognormal spread of interval lengths (Fig. 6b
	// CoV medians 169 % and 126 %).
	MeanCycleSec, SigmaActive, SigmaIdle float64
	// MaxCycles bounds phase-list length for very long jobs.
	MaxCycles int
	// LevelJitter is the per-phase level log-jitter (Fig. 7a active CoVs).
	LevelJitter float64
	// SampleNoisePct is additive per-sample observation noise.
	SampleNoisePct float64

	// --- bottleneck bursts (Figs. 7b, 8) ---

	// BurstSMProb: 22 % of jobs touch 100 % SM at some point. BurstRxProb /
	// BurstTxProb are marginal PCIe saturation probabilities, and
	// BurstRxGivenSM induces the ≈9 % SM∧Rx overlap of Fig. 8b.
	BurstSMProb, BurstRxProb, BurstTxProb float64
	BurstRxGivenSM, BurstTxGivenRx        float64

	// --- memory-intensive overlay (§III: ≈30 % of jobs are memory-bound) ---

	MemIntensiveFrac float64
	// MemSizeSaturationProb is the share of jobs that fill GPU memory to
	// capacity at some point (Fig. 8a's memory-size bottleneck bar).
	MemSizeSaturationProb float64

	// --- user utilization bias (Fig. 12 Spearman trends) ---

	// UtilBiasBase/Slope map activity rank to a multiplicative utilization
	// bias: expert users "use GPU resources more efficiently".
	UtilBiasBase, UtilBiasSlope, UtilBiasNoise float64

	// --- queue waits, analytic path (Fig. 3b, §V) ---

	// GPUWaitFastFrac of GPU jobs see an exponential wait with mean
	// GPUWaitFastMeanSec; the rest draw from a lognormal tail (median
	// GPUWaitSlowMedianSec, q75 GPUWaitSlowQ75Sec). Targets: 70 % of GPU
	// jobs wait under a minute.
	GPUWaitFastFrac, GPUWaitFastMeanSec     float64
	GPUWaitSlowMedianSec, GPUWaitSlowQ75Sec float64
	MultiGPUWaitFactor                      float64
	CPUWaitFastFrac, CPUWaitFastMeanSec     float64
	CPUWaitSlowMedianSec, CPUWaitSlowQ75Sec float64
	CPUExclusiveFrac                        float64

	// --- arrivals ---

	// SessionMeanJobs and SessionGapMeanSec shape per-user submission
	// sessions: users work in bursts (a tuning sweep, an interactive
	// sitting) rather than submitting uniformly over 125 days. Each session
	// starts at a density-sampled time; within it, consecutive submissions
	// are exponential gaps.
	SessionMeanJobs   float64
	SessionGapMeanSec float64
	// WeekendLoadFactor scales weekend arrival rates; DeadlineDays are
	// conference deadlines with DeadlineSurgeFactor load in the
	// DeadlineWindowDays before each (§II: "usage increases closer to the
	// deadlines of popular deep learning conferences").
	WeekendLoadFactor   float64
	DeadlineDays        []float64
	DeadlineSurgeFactor float64
	DeadlineWindowDays  float64
}

// DefaultCalibration returns the paper-tuned parameter set.
func DefaultCalibration() Calibration {
	return Calibration{
		GPUJobFraction:      0.645,
		ShortGPUJobFraction: 0.02,
		CasualUserFrac:      0.55,
		CasualJobsLow:       2,
		CasualJobsHigh:      40,
		RegularMedianJobs:   250,
		RegularLogSigma:     1.25,

		UserRuntimeC:        60,
		UserRuntimeBeta:     0.15,
		UserRuntimeLogSigma: 0.6,
		UserSigmaMean:       2.45,
		UserSigmaSD:         0.25,
		CategoryRuntimeFactor: [trace.NumCategories]float64{
			trace.Mature:      1.0,
			trace.Exploratory: 2.4,
			trace.Development: 0.5,
			trace.IDE:         1.0, // unused: IDE runs to its timeout
		},
		MaxRunMinutes:         1500,
		IDETimeoutShortProb:   0.7,
		MultiGPURuntimeFactor: 1.4,
		ExplMultiBoost:        1.5,
		CPURunMedianMin:       8,
		CPURunQ75Min:          45,

		MatureShareBase:  0.10,
		MatureShareSlope: 0.58,
		MatureShareExp:   1.25,
		MatureShareNoise: 0.07,
		NonMatureWeights: [3]float64{0.18, 0.19, 0.035},

		NonIDEInterfaceWeights: [trace.NumInterfaces]float64{
			trace.MapReduce:   0.0104,
			trace.Batch:       0.311,
			trace.Interactive: 0.0052,
			trace.Other:       0.674,
		},

		UserNeverMultiFrac: 0.40,
		UserMax8Frac:       0.078,
		UserMax32Frac:      0.052,
		MultiProbMax2:      0.175,
		MultiProbMax8:      0.24,
		MultiProbMax32:     0.30,
		IdleGPUJobFrac:     0.35,

		LowActiveFracMatureExpl: 0.17,
		MeanCycleSec:            180,
		SigmaActive:             1.35,
		SigmaIdle:               1.05,
		MaxCycles:               48,
		LevelJitter:             0.18,
		SampleNoisePct:          8,

		BurstSMProb:    0.22,
		BurstRxProb:    0.15,
		BurstTxProb:    0.12,
		BurstRxGivenSM: 0.41,
		BurstTxGivenRx: 0.42,

		MemIntensiveFrac:      0.15,
		MemSizeSaturationProb: 0.07,

		UtilBiasBase:  0.55,
		UtilBiasSlope: 0.78,
		UtilBiasNoise: 0.15,

		GPUWaitFastFrac:      0.70,
		GPUWaitFastMeanSec:   18,
		GPUWaitSlowMedianSec: 180,
		GPUWaitSlowQ75Sec:    700,
		MultiGPUWaitFactor:   0.4,
		CPUWaitFastFrac:      0.22,
		CPUWaitFastMeanSec:   25,
		CPUWaitSlowMedianSec: 300,
		CPUWaitSlowQ75Sec:    900,
		CPUExclusiveFrac:     0.75,

		SessionMeanJobs:     6,
		SessionGapMeanSec:   900,
		WeekendLoadFactor:   0.55,
		DeadlineDays:        []float64{45, 105},
		DeadlineSurgeFactor: 1.7,
		DeadlineWindowDays:  10,
	}
}

// Validate reports out-of-range calibration values.
func (c Calibration) Validate() error {
	inUnit := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("workload: %s = %v out of [0,1]", name, v)
		}
		return nil
	}
	checks := []struct {
		name string
		v    float64
	}{
		{"GPUJobFraction", c.GPUJobFraction},
		{"ShortGPUJobFraction", c.ShortGPUJobFraction},
		{"UserNeverMultiFrac", c.UserNeverMultiFrac},
		{"IdleGPUJobFrac", c.IdleGPUJobFrac},
		{"BurstSMProb", c.BurstSMProb},
		{"BurstRxProb", c.BurstRxProb},
		{"BurstTxProb", c.BurstTxProb},
		{"MemIntensiveFrac", c.MemIntensiveFrac},
		{"GPUWaitFastFrac", c.GPUWaitFastFrac},
		{"CPUExclusiveFrac", c.CPUExclusiveFrac},
	}
	for _, ch := range checks {
		if err := inUnit(ch.name, ch.v); err != nil {
			return err
		}
	}
	if c.CasualJobsLow <= 0 || c.CasualJobsHigh <= c.CasualJobsLow ||
		c.RegularMedianJobs <= 0 || c.RegularLogSigma <= 0 || c.CasualUserFrac < 0 || c.CasualUserFrac > 1 {
		return fmt.Errorf("workload: invalid user-weight parameters")
	}
	if c.UserNeverMultiFrac+c.UserMax8Frac+c.UserMax32Frac > 1 {
		return fmt.Errorf("workload: user multi-GPU class fractions exceed 1")
	}
	if c.MeanCycleSec <= 0 || c.MaxCycles < 1 {
		return fmt.Errorf("workload: invalid phase parameters")
	}
	if c.SessionMeanJobs < 1 || c.SessionGapMeanSec <= 0 {
		return fmt.Errorf("workload: invalid session parameters")
	}
	return nil
}
