package workload

import (
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/trace"
)

// User is one synthetic community member with the behavioral parameters the
// paper's §IV shows to vary widely across users: activity level (job count),
// characteristic run-time scale, utilization bias, life-cycle mix, and
// multi-GPU propensity.
type User struct {
	Index int
	// JobCount is the user's total submissions over the trace window.
	JobCount int
	// RankFrac is the user's activity percentile in [0, 1]; 1 is the most
	// active user. Several behavioral dials key off it.
	RankFrac float64
	// RuntimeMedianMin is the user's median job run time in minutes;
	// RuntimeLogSigma spreads individual jobs around it (Fig. 11).
	RuntimeMedianMin, RuntimeLogSigma float64
	// UtilBias multiplies the user's utilization levels (Fig. 12: expert
	// users run hotter).
	UtilBias float64
	// CategoryMix draws life-cycle categories for the user's jobs.
	CategoryMix *dist.Categorical
	// MatureShare is the user's mature fraction (kept for Fig. 17 analysis).
	MatureShare float64
	// MaxGPUs caps the user's job sizes (1 for never-multi users).
	MaxGPUs int
	// MultiProb is the per-job probability of requesting >1 GPU.
	MultiProb float64
	// JitterSigma is the user's job-to-job utilization log-spread. It is
	// deliberately independent of activity rank: the paper's Fig. 12 finds
	// that expert users are NOT more predictable, so consistency must not
	// track job count.
	JitterSigma float64
	// GPUFrac is the user's share of jobs that request GPUs at all.
	GPUFrac float64
}

// BuildUsers synthesizes the user population: Pareto-weighted job counts
// normalized to totalJobs, then rank-correlated behavioral parameters.
// The returned slice is indexed by user and sums to ~totalJobs submissions.
func BuildUsers(c Calibration, numUsers, totalJobs int, rng *dist.RNG) []User {
	if numUsers < 1 {
		return nil
	}
	casual := dist.Uniform{Low: c.CasualJobsLow, High: c.CasualJobsHigh}
	regular := dist.Lognormal{Mu: math.Log(c.RegularMedianJobs), Sigma: c.RegularLogSigma}
	weights := make([]float64, numUsers)
	var wsum float64
	for i := range weights {
		if rng.Bool(c.CasualUserFrac) {
			weights[i] = casual.Sample(rng)
		} else {
			weights[i] = regular.Sample(rng)
		}
		wsum += weights[i]
	}
	users := make([]User, numUsers)
	assigned := 0
	for i := range users {
		n := int(weights[i] / wsum * float64(totalJobs))
		if n < 1 {
			n = 1
		}
		users[i] = User{Index: i, JobCount: n}
		assigned += n
	}
	// Put the rounding remainder on the heaviest user to preserve the total.
	if assigned < totalJobs {
		heaviest := 0
		for i := range users {
			if users[i].JobCount > users[heaviest].JobCount {
				heaviest = i
			}
		}
		users[heaviest].JobCount += totalJobs - assigned
	}

	// Activity ranks: RankFrac 1 = most jobs.
	order := make([]int, numUsers)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return users[order[a]].JobCount < users[order[b]].JobCount })
	for rank, idx := range order {
		if numUsers == 1 {
			users[idx].RankFrac = 1
		} else {
			users[idx].RankFrac = float64(rank) / float64(numUsers-1)
		}
	}

	// Multi-GPU capability classes. Assign the large-job classes
	// preferentially to active users — scaling to many GPUs takes the
	// training the paper describes — but keep some spread via shuffled
	// assignment within the top half.
	classOf := assignMultiClasses(c, users, rng)

	for i := range users {
		u := &users[i]
		r := u.RankFrac

		// Run-time scale: user medians cluster near the 30-minute job
		// median with mild activity dependence and lognormal spread.
		med := c.UserRuntimeC * math.Pow(float64(u.JobCount), -c.UserRuntimeBeta)
		med *= math.Exp(c.UserRuntimeLogSigma * rng.NormFloat64())
		u.RuntimeMedianMin = clampF(med, 0.8, c.MaxRunMinutes/4)
		// Within-user spread is heavy for everyone — quick probes next to
		// day-long trainings — and deliberately rank-independent: Fig. 12
		// finds no activity→predictability relationship.
		u.RuntimeLogSigma = clampF(c.UserSigmaMean+c.UserSigmaSD*rng.NormFloat64(), 1.6, 3.2)

		// Utilization bias rises superlinearly with activity rank (Fig. 12;
		// the convexity keeps the median user's average utilization low, as
		// in Fig. 10, while experts run hot).
		u.UtilBias = clampF(c.UtilBiasBase+c.UtilBiasSlope*r*r+c.UtilBiasNoise*rng.NormFloat64(), 0.3, 1.8)

		// Life-cycle mix: mature share grows with rank (Figs. 15, 17).
		mature := c.MatureShareBase + c.MatureShareSlope*math.Pow(r, c.MatureShareExp) +
			c.MatureShareNoise*rng.NormFloat64()
		mature = clampF(mature, 0.02, 0.95)
		u.MatureShare = mature
		rest := 1 - mature
		nw := c.NonMatureWeights
		nwSum := nw[0] + nw[1] + nw[2]
		// Jitter the split so users differ in how they spend non-mature time.
		e := nw[0] / nwSum * rest * math.Exp(0.3*rng.NormFloat64())
		dv := nw[1] / nwSum * rest * math.Exp(0.3*rng.NormFloat64())
		id := nw[2] / nwSum * rest * math.Exp(0.3*rng.NormFloat64())
		u.CategoryMix = dist.NewCategorical(mature, e, dv, id)

		// Multi-GPU propensity by class.
		switch classOf[i] {
		case 0:
			u.MaxGPUs, u.MultiProb = 1, 0
		case 1:
			u.MaxGPUs, u.MultiProb = 2, c.MultiProbMax2
		case 2:
			u.MaxGPUs, u.MultiProb = 8, c.MultiProbMax8
		default:
			u.MaxGPUs, u.MultiProb = 32, c.MultiProbMax32
		}

		// Job-to-job consistency: a mild rank term (heavy users juggle more
		// distinct projects) balances the category-mix entropy that would
		// otherwise make experts look predictable — the paper's Fig. 12
		// finds the jobs↔CoV correlation weak.
		u.JitterSigma = 0.05 + 0.68*r + 0.25*rng.Float64()

		// GPU share of the user's jobs, jittered around the global fraction.
		u.GPUFrac = clampF(c.GPUJobFraction+0.18*rng.NormFloat64(), 0.1, 1)
	}
	return users
}

// assignMultiClasses returns a class per user: 0 never-multi, 1 max-2,
// 2 max-8, 3 max-32. Large-job classes skew toward active users.
func assignMultiClasses(c Calibration, users []User, rng *dist.RNG) []int {
	n := len(users)
	classes := make([]int, n)
	n32 := int(math.Round(c.UserMax32Frac * float64(n)))
	n8 := int(math.Round(c.UserMax8Frac * float64(n)))
	nNever := int(math.Round(c.UserNeverMultiFrac * float64(n)))

	// Order users by a noisy activity score so class boundaries are soft.
	type scored struct {
		idx   int
		score float64
	}
	sc := make([]scored, n)
	for i := range users {
		sc[i] = scored{idx: i, score: users[i].RankFrac + 0.35*rng.NormFloat64()}
	}
	sort.Slice(sc, func(a, b int) bool { return sc[a].score > sc[b].score })
	for pos, s := range sc {
		switch {
		case pos < n32:
			classes[s.idx] = 3
		case pos < n32+n8:
			classes[s.idx] = 2
		case pos >= n-nNever:
			classes[s.idx] = 0
		default:
			classes[s.idx] = 1
		}
	}
	return classes
}

// CategoryFromDraw converts a CategoryMix draw index into a trace.Category.
func CategoryFromDraw(i int) trace.Category {
	switch i {
	case 0:
		return trace.Mature
	case 1:
		return trace.Exploratory
	case 2:
		return trace.Development
	default:
		return trace.IDE
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
