package workload

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestHostLoadModelPhases(t *testing.T) {
	m := DefaultHostLoadModel()
	// CPU job: constant high load.
	cpu := &JobSpec{RunSec: 600, Cores: 40}
	if got := m.HostLoadAt(cpu, 100); got != m.CPUJobPct {
		t.Fatalf("cpu job load = %v", got)
	}
	// GPU job alternating idle/active.
	p := mustProfile(t, []Phase{
		{DurSec: 300, Active: false},
		{DurSec: 300, Active: true, Level: gpuLevel(50)},
	}, 0)
	spec := &JobSpec{RunSec: 600, NumGPUs: 1, Interface: trace.Batch, Profiles: []*Profile{p}}
	if got := m.HostLoadAt(spec, 100); got != m.GPUIdlePct {
		t.Fatalf("gpu-idle host load = %v, want %v", got, m.GPUIdlePct)
	}
	if got := m.HostLoadAt(spec, 400); got != m.GPUActivePct {
		t.Fatalf("gpu-active host load = %v, want %v", got, m.GPUActivePct)
	}
	// Interactive idle is near zero.
	spec.Interface = trace.Interactive
	if got := m.HostLoadAt(spec, 100); got != m.InteractiveIdlePct {
		t.Fatalf("interactive idle load = %v", got)
	}
}

func TestHostLoadDigestMatchesSampling(t *testing.T) {
	m := DefaultHostLoadModel()
	p := mustProfile(t, []Phase{
		{DurSec: 400, Active: false},
		{DurSec: 600, Active: true, Level: gpuLevel(40)},
	}, 0)
	spec := &JobSpec{RunSec: 1000, NumGPUs: 1, Interface: trace.Batch, Profiles: []*Profile{p}}
	digest := m.HostLoadDigest(spec)
	if !digest.Valid() {
		t.Fatalf("digest invalid: %+v", digest)
	}
	_, sampledMean, _ := m.HostLoadSummary(spec, 10, dist.New(1))
	if math.Abs(digest.Mean-sampledMean) > 3 {
		t.Fatalf("analytic mean %v vs sampled %v", digest.Mean, sampledMean)
	}
	// Expected mean: 0.6*35 + 0.4*70 = 49.
	if math.Abs(digest.Mean-49) > 1e-9 {
		t.Fatalf("digest mean = %v, want 49", digest.Mean)
	}
}

func TestHostLoadSupportsColocationClaim(t *testing.T) {
	// §III: GPU jobs are CPU-light relative to CPU jobs; the generated
	// population must reproduce that ordering.
	_, _, ds := calibDataset(t)
	var gpuMeans, cpuMeans []float64
	for i := range ds.Jobs {
		j := &ds.Jobs[i]
		if j.IsGPU() {
			gpuMeans = append(gpuMeans, j.HostCPU.Mean)
		} else {
			cpuMeans = append(cpuMeans, j.HostCPU.Mean)
		}
	}
	if stats.Median(gpuMeans) >= stats.Median(cpuMeans) {
		t.Fatalf("GPU jobs not CPU-light: %v vs %v", stats.Median(gpuMeans), stats.Median(cpuMeans))
	}
	for _, v := range gpuMeans {
		if v < 0 || v > 100 {
			t.Fatalf("host load %v out of range", v)
		}
	}
	var rec metrics.SummaryRecord = ds.Jobs[0].HostCPU
	if !rec.Valid() {
		t.Fatalf("host digest invalid: %+v", rec)
	}
}

func gpuLevel(sm float64) gpu.Utilization {
	return gpu.Utilization{SMPct: sm}
}
