package workload

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
)

// genTestDataset builds one moderately sized population shared by the
// calibration tests (generation dominates test time).
func genTestDataset(t *testing.T) (*Generator, []JobSpec, *trace.Dataset) {
	t.Helper()
	cfg := ScaledConfig(0.15)
	cfg.Seed = 7
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := g.GenerateSpecs()
	return g, specs, g.BuildDataset(specs)
}

var calibCache struct {
	g     *Generator
	specs []JobSpec
	ds    *trace.Dataset
}

func calibDataset(t *testing.T) (*Generator, []JobSpec, *trace.Dataset) {
	t.Helper()
	if calibCache.ds == nil {
		calibCache.g, calibCache.specs, calibCache.ds = genTestDataset(t)
	}
	return calibCache.g, calibCache.specs, calibCache.ds
}

func inBand(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	t.Logf("%-38s %10.3f   band [%g, %g]", name, got, lo, hi)
	if math.IsNaN(got) || got < lo || got > hi {
		t.Errorf("%s = %v outside calibration band [%v, %v]", name, got, lo, hi)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := ScaledConfig(0.01)
	cfg.Seed = 42
	g1, _ := NewGenerator(cfg)
	g2, _ := NewGenerator(cfg)
	s1, s2 := g1.GenerateSpecs(), g2.GenerateSpecs()
	if len(s1) != len(s2) {
		t.Fatalf("lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].SubmitSec != s2[i].SubmitSec || s1[i].RunSec != s2[i].RunSec ||
			s1[i].User != s2[i].User || s1[i].NumGPUs != s2[i].NumGPUs {
			t.Fatalf("spec %d differs", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Users = 0
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("zero users accepted")
	}
	bad = DefaultConfig()
	bad.Calib.CasualJobsHigh = 0
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("bad calibration accepted")
	}
	bad = DefaultConfig()
	bad.PowerModel = nil
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("nil power model accepted")
	}
}

func TestSpecsAreOrderedAndComplete(t *testing.T) {
	_, specs, ds := calibDataset(t)
	for i := 1; i < len(specs); i++ {
		if specs[i].SubmitSec < specs[i-1].SubmitSec {
			t.Fatal("specs not sorted by submit time")
		}
		if specs[i].ID != int64(i+1) {
			t.Fatal("ids not sequential")
		}
	}
	for i := range specs {
		s := &specs[i]
		if s.IsGPU() && len(s.Profiles) != s.NumGPUs {
			t.Fatalf("job %d: %d profiles for %d GPUs", s.ID, len(s.Profiles), s.NumGPUs)
		}
		if s.RunSec <= 0 || s.LimitSec <= 0 {
			t.Fatalf("job %d: non-positive durations", s.ID)
		}
		if s.RunSec > s.LimitSec+1e-9 {
			t.Fatalf("job %d: run %v exceeds limit %v", s.ID, s.RunSec, s.LimitSec)
		}
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

// --- Calibration bands: population structure (§II, §IV) ---

func TestCalibrationPopulation(t *testing.T) {
	g, _, ds := calibDataset(t)
	gpuJobs := ds.GPUJobs()
	frac := float64(len(gpuJobs)) / float64(len(ds.Jobs))
	inBand(t, "GPU-job fraction (analyzed)", frac, 0.5, 0.72)

	// Pareto concentration of submissions across users (§IV).
	counts := map[int]float64{}
	for i := range ds.Jobs {
		counts[ds.Jobs[i].User]++
	}
	var perUser []float64
	for _, n := range counts {
		perUser = append(perUser, n)
	}
	conc := stats.NewConcentration(perUser)
	inBand(t, "top-5% user job share", conc.TopShare(0.05), 0.30, 0.58)
	inBand(t, "top-20% user job share", conc.TopShare(0.20), 0.70, 0.92)
	inBand(t, "median user job count", stats.Median(perUser), 15, 110)
	if len(g.Users()) != g.Config().Users {
		t.Fatalf("user count = %d", len(g.Users()))
	}
}

// --- Calibration bands: run times and waits (Fig. 3) ---

func TestCalibrationRuntimes(t *testing.T) {
	_, _, ds := calibDataset(t)
	gpuRun := trace.RunMinutes(ds.GPUJobs())
	q := stats.Quantiles(gpuRun, 0.25, 0.5, 0.75)
	inBand(t, "GPU run p25 (min)", q[0], 2, 10)
	inBand(t, "GPU run median (min)", q[1], 18, 45)
	inBand(t, "GPU run p75 (min)", q[2], 110, 450)

	cpuRun := trace.RunMinutes(ds.CPUJobs())
	inBand(t, "CPU run median (min)", stats.Median(cpuRun), 5, 13)
}

func TestCalibrationWaits(t *testing.T) {
	_, _, ds := calibDataset(t)
	var gpuWaitUnderMin, cpuWaitOverMin float64
	var gpuWaitFracUnder2 float64
	gpuJobs, cpuJobs := ds.GPUJobs(), ds.CPUJobs()
	for _, j := range gpuJobs {
		if j.WaitSec < 60 {
			gpuWaitUnderMin++
		}
		if j.WaitFraction() < 2 {
			gpuWaitFracUnder2++
		}
	}
	for _, j := range cpuJobs {
		if j.WaitSec > 60 {
			cpuWaitOverMin++
		}
	}
	inBand(t, "GPU jobs waiting <1min", gpuWaitUnderMin/float64(len(gpuJobs)), 0.60, 0.80)
	inBand(t, "GPU jobs wait <2% of service", gpuWaitFracUnder2/float64(len(gpuJobs)), 0.45, 0.75)
	inBand(t, "CPU jobs waiting >1min", cpuWaitOverMin/float64(len(cpuJobs)), 0.60, 0.82)
}

// --- Calibration bands: utilization marginals (Fig. 4) ---

func TestCalibrationUtilization(t *testing.T) {
	_, _, ds := calibDataset(t)
	jobs := ds.GPUJobs()
	sm := trace.MeanValues(jobs, metrics.SMUtil)
	mem := trace.MeanValues(jobs, metrics.MemUtil)
	msz := trace.MeanValues(jobs, metrics.MemSize)

	inBand(t, "SM util median", stats.Median(sm), 10, 22)
	inBand(t, "mem util median", stats.Median(mem), 0.5, 5)
	inBand(t, "mem size median", stats.Median(msz), 5, 14)
	inBand(t, "jobs >50% SM", stats.FractionAbove(sm, 50), 0.12, 0.28)
	inBand(t, "jobs >50% mem", stats.FractionAbove(mem, 50), 0.0, 0.08)
	inBand(t, "jobs >50% mem size", stats.FractionAbove(msz, 50), 0.08, 0.22)
}

// --- Calibration bands: GPU counts and multi-GPU structure (Fig. 13, §V) ---

func TestCalibrationGPUCounts(t *testing.T) {
	_, _, ds := calibDataset(t)
	jobs := ds.GPUJobs()
	var single, over2, over8 float64
	var totalHours, multiHours float64
	for _, j := range jobs {
		if j.NumGPUs == 1 {
			single++
		}
		if j.NumGPUs > 2 {
			over2++
		}
		if j.NumGPUs >= 9 {
			over8++
		}
		totalHours += j.GPUHours()
		if j.NumGPUs >= 2 {
			multiHours += j.GPUHours()
		}
	}
	n := float64(len(jobs))
	inBand(t, "single-GPU job fraction", single/n, 0.78, 0.90)
	inBand(t, "jobs >2 GPUs", over2/n, 0.01, 0.05)
	inBand(t, "jobs >=9 GPUs", over8/n, 0.0005, 0.015)
	inBand(t, "multi-GPU share of GPU hours", multiHours/totalHours, 0.35, 0.65)

	// User-level multi-GPU reach (§V).
	maxByUser := map[int]int{}
	for _, j := range jobs {
		if j.NumGPUs > maxByUser[j.User] {
			maxByUser[j.User] = j.NumGPUs
		}
	}
	var anyMulti, ge3, ge9, users float64
	for _, m := range maxByUser {
		users++
		if m >= 2 {
			anyMulti++
		}
		if m >= 3 {
			ge3++
		}
		if m >= 9 {
			ge9++
		}
	}
	inBand(t, "users with >=1 multi-GPU job", anyMulti/users, 0.45, 0.75)
	inBand(t, "users with >=3 GPU jobs", ge3/users, 0.06, 0.22)
	inBand(t, "users with >=9 GPU jobs", ge9/users, 0.02, 0.10)
}

// --- Calibration bands: life-cycle mix (Fig. 15) ---

func TestCalibrationLifecycle(t *testing.T) {
	_, specs, _ := calibDataset(t)
	var counts [trace.NumCategories]float64
	var hours [trace.NumCategories]float64
	var n, totalHours float64
	for i := range specs {
		s := &specs[i]
		if !s.IsGPU() || s.RunSec < trace.MinGPUJobRunSec {
			continue
		}
		n++
		counts[s.Category]++
		h := float64(s.NumGPUs) * s.RunSec / 3600
		hours[s.Category] += h
		totalHours += h
	}
	inBand(t, "mature job share", counts[trace.Mature]/n, 0.50, 0.70)
	inBand(t, "exploratory job share", counts[trace.Exploratory]/n, 0.12, 0.25)
	inBand(t, "development job share", counts[trace.Development]/n, 0.12, 0.26)
	inBand(t, "IDE job share", counts[trace.IDE]/n, 0.02, 0.06)

	inBand(t, "mature GPU-hour share", hours[trace.Mature]/totalHours, 0.28, 0.52)
	inBand(t, "exploratory GPU-hour share", hours[trace.Exploratory]/totalHours, 0.22, 0.45)
	inBand(t, "development GPU-hour share", hours[trace.Development]/totalHours, 0.04, 0.16)
	inBand(t, "IDE GPU-hour share", hours[trace.IDE]/totalHours, 0.10, 0.28)
}

// --- Calibration bands: power (Fig. 9a) ---

func TestCalibrationPower(t *testing.T) {
	_, _, ds := calibDataset(t)
	jobs := ds.GPUJobs()
	avg := trace.MeanValues(jobs, metrics.Power)
	max := trace.MaxValues(jobs, metrics.Power)
	inBand(t, "median avg power (W)", stats.Median(avg), 32, 62)
	inBand(t, "median max power (W)", stats.Median(max), 60, 120)
	// Fig. 9b at 150 W: >60 % of jobs wholly unimpacted.
	var unimpacted float64
	for i, a := range avg {
		if max[i] <= 150 && a <= 150 {
			unimpacted++
		}
	}
	inBand(t, "jobs unimpacted by 150W cap", unimpacted/float64(len(jobs)), 0.5, 0.85)
}

// --- Calibration bands: per-user behavior (Figs. 10–12) ---

func TestCalibrationUserBehavior(t *testing.T) {
	// User-level statistics (especially rank correlations) need the full
	// 191-user population to be properly powered; the shared 0.15-scale
	// dataset has only ~29 users, where Spearman's standard error alone is
	// ~0.19. Generate a dedicated population: all users, scaled job count.
	cfg := DefaultConfig()
	cfg.TotalJobs = cfg.TotalJobs / 5
	cfg.TimeSeriesJobs = 0
	cfg.Seed = 7
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.BuildDataset(g.GenerateSpecs())
	byUser := ds.ByUser()
	var avgRun, covRun, avgSM, covSM, jobCounts, gpuHours []float64
	for _, jobs := range byUser {
		if len(jobs) < 2 {
			continue
		}
		var runs, sms []float64
		var hours float64
		for _, j := range jobs {
			runs = append(runs, j.RunSec/60)
			sms = append(sms, j.GPU[metrics.SMUtil].Mean)
			hours += j.GPUHours()
		}
		avgRun = append(avgRun, stats.Mean(runs))
		covRun = append(covRun, stats.CoV(runs))
		avgSM = append(avgSM, stats.Mean(sms))
		cs := stats.CoV(sms)
		if !math.IsNaN(cs) {
			covSM = append(covSM, cs)
		}
		jobCounts = append(jobCounts, float64(len(jobs)))
		gpuHours = append(gpuHours, hours)
	}
	inBand(t, "median user avg run (min)", stats.Median(avgRun), 150, 700)
	inBand(t, "median user run CoV (%)", stats.Median(covRun), 100, 230)
	inBand(t, "median user avg SM (%)", stats.Median(avgSM), 5, 19)
	inBand(t, "median user SM CoV (%)", stats.Median(covSM), 70, 180)

	// Fig. 12: activity correlates with utilization but not with its CoV.
	r1 := stats.Spearman(jobCounts, avgSM)
	inBand(t, "Spearman(jobs, avg SM)", r1.Rho, 0.35, 0.95)
	if r1.PValue >= 0.05 {
		t.Errorf("Spearman(jobs, avg SM) p = %v, want < 0.05", r1.PValue)
	}
	r2 := stats.Spearman(gpuHours, avgSM)
	inBand(t, "Spearman(hours, avg SM)", r2.Rho, 0.25, 0.95)
	r3 := stats.Spearman(jobCounts, covSM)
	inBand(t, "Spearman(jobs, CoV SM)", math.Abs(r3.Rho), 0, 0.5)
}

// --- Calibration bands: phases (Fig. 6) via the time-series subset ---

func TestCalibrationSeriesSubset(t *testing.T) {
	_, _, ds := calibDataset(t)
	if len(ds.Series) == 0 {
		t.Fatal("no time series attached")
	}
	var activeFracs []float64
	for id, ts := range ds.Series {
		if len(ts.PerGPU) == 0 || len(ts.PerGPU[0]) == 0 {
			t.Fatalf("series %d empty", id)
		}
		active := 0
		stream := ts.PerGPU[0]
		for _, s := range stream {
			if s.Values[metrics.SMUtil] > 1 || s.Values[metrics.MemUtil] > 1 {
				active++
			}
		}
		activeFracs = append(activeFracs, float64(active)/float64(len(stream))*100)
	}
	q := stats.Quantiles(activeFracs, 0.25, 0.5, 0.75)
	inBand(t, "active time p25 (%)", q[0], 5, 30)
	inBand(t, "active time median (%)", q[1], 65, 95)
	inBand(t, "active time p75 (%)", q[2], 85, 100)
}

func TestArrivalProcess(t *testing.T) {
	c := DefaultCalibration()
	a := NewArrivalProcess(c, 125)
	if d := a.Density(-1); d != 0 {
		t.Fatal("density outside window not zero")
	}
	// Surge window elevates density relative to the same weekday phase
	// outside any window (day 40 is in the [35,45) window before deadline 45;
	// day 31 is the same weekday phase, 14 days earlier).
	surge, base := a.Density(40.3), a.Density(26.3)
	if surge <= base {
		t.Fatalf("deadline surge not visible: %v <= %v", surge, base)
	}
	// Weekends are lighter: day offsets 5.3 vs 1.3 within the first week.
	if we, wd := a.Density(5.3), a.Density(1.3); we >= wd {
		t.Fatalf("weekend density %v >= weekday %v", we, wd)
	}
}

func TestSessionStructuredArrivals(t *testing.T) {
	// Within-user inter-submission gaps must be bimodal: many short
	// within-session gaps plus long between-session gaps — unlike an
	// i.i.d.-over-125-days process where gaps for a median user are hours.
	_, specs, _ := calibDataset(t)
	byUser := map[int][]float64{}
	for i := range specs {
		byUser[specs[i].User] = append(byUser[specs[i].User], specs[i].SubmitSec)
	}
	var short, total float64
	for _, times := range byUser {
		if len(times) < 10 {
			continue
		}
		sorted := append([]float64(nil), times...)
		sortFloat64s(sorted)
		for i := 1; i < len(sorted); i++ {
			gap := sorted[i] - sorted[i-1]
			total++
			if gap < 3600 {
				short++
			}
		}
	}
	if total == 0 {
		t.Fatal("no gaps measured")
	}
	frac := short / total
	t.Logf("within-hour inter-submission gaps: %.1f%%", frac*100)
	if frac < 0.5 {
		t.Errorf("session structure missing: only %.1f%% of gaps under an hour", frac*100)
	}
	// Submissions still stay inside the observation window.
	for i := range specs {
		if specs[i].SubmitSec < 0 || specs[i].SubmitSec > 125*86400 {
			t.Fatalf("submit time %v outside window", specs[i].SubmitSec)
		}
	}
}

func sortFloat64s(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
