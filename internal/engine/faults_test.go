package engine

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/monitor"
	"repro/internal/slurm"
)

// faultExperiment layers the full fault machinery — node crashes, drains,
// GPU fatals, requeue/backoff, monitor degradation — onto the small engine
// experiment so the determinism tests exercise every new code path.
func faultExperiment() Experiment {
	e := smallExperiment()
	e.Sim.Faults = faults.Plan{
		NodeCrashMTBFHours: 24,
		NodeDrainMTBFHours: 48,
		MeanRepairHours:    2,
		GPUFatalMTBFHours:  48,
	}
	e.Sim.Requeue = slurm.RequeuePolicy{MaxRetries: 10, HoldSec: 60, HoldBackoff: 2}
	mc := monitor.DefaultConfig()
	e.Sim.Monitor = &mc
	e.Sim.MonitorFaults = monitor.FaultPlan{0: {DropRate: 0.2}}
	return e
}

// TestFaultRunDeterministicAcrossWorkerCounts extends the engine's headline
// determinism contract to fault-injected replications: the failure streams
// are derived from each replication's private seed, so the merged summary
// must be byte-identical whether one worker or eight ran the batch.
func TestFaultRunDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injected replication batch in -short mode")
	}
	const reps = 4
	fn := faultExperiment().Replicator()
	serial := runBatch(t, 1, reps, fn)
	parallel := runBatch(t, 8, reps, fn)
	if serial.Merged.Fingerprint() != parallel.Merged.Fingerprint() {
		var a, b strings.Builder
		serial.Merged.WriteCanonical(&a)
		parallel.Merged.WriteCanonical(&b)
		t.Fatalf("workers=1 vs workers=8 fault summaries differ:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
	for _, key := range []string{
		"node_crashes", "node_drains", "gpu_fatals", "requeues",
		"jobs_abandoned", "lost_gpu_hours", "recovered_gpu_hours",
		"down_gpu_hours", "availability_mean", "goodput_frac",
		"monitor_dropped_samples", "monitor_stalled_jobs",
	} {
		if serial.Merged.Agg(key) == nil {
			t.Fatalf("fault replication missing %q metric", key)
		}
	}
	if avail := serial.Merged.Agg("availability_mean"); avail.Max() > 1 || avail.Min() <= 0 {
		t.Fatalf("availability out of (0,1]: min %v max %v", avail.Min(), avail.Max())
	}
}

// TestFaultFreePlanKeepsSampleKeySet guards the golden figures: without a
// fault plan the replicator must emit exactly the pre-fault key set, so
// fault support cannot silently change fault-free figure output.
func TestFaultFreePlanKeepsSampleKeySet(t *testing.T) {
	b := runBatch(t, 2, 2, smallExperiment().Replicator())
	for _, key := range []string{
		"node_crashes", "lost_gpu_hours", "availability_mean",
		"monitor_dropped_samples",
	} {
		if b.Merged.Agg(key) != nil {
			t.Fatalf("fault-free replication emitted fault metric %q", key)
		}
	}
}
