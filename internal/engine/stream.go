package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dist"
	"repro/internal/trace"
)

// DatasetReplicator computes one replication and returns its full dataset
// alongside the scalar sample — the streaming analogue of Replicator for
// callers that want the per-job records, not just the folded metrics.
// The same concurrency contract applies: no shared mutable state.
type DatasetReplicator func(ctx context.Context, rep int, seed uint64) (*trace.Dataset, Sample, error)

// repIDBits is the job-ID namespace width left to one replication when
// streaming into a shared store: IDs are offset by (rep+1)<<repIDBits so
// records from different replications never collide. 2^40 jobs per
// replication is far beyond any simulated population.
const repIDBits = 40

// StreamJobID returns the store-wide job ID of job id in replication rep.
func StreamJobID(rep int, id int64) int64 {
	return (int64(rep)+1)<<repIDBits | id
}

// StreamSink receives each completed replication's dataset — job IDs
// already namespaced via StreamJobID — in replication-index order. A local
// trace.SegStore satisfies it through SegStoreSink; the durable ingest
// client satisfies it directly, which is how a simulation streams its
// replications into a remote simcloudd with retry and idempotency instead
// of an in-process store. A sink error aborts the batch: a half-streamed
// store has no meaningful merged interpretation.
type StreamSink interface {
	AppendStreamDataset(ds *trace.Dataset) error
}

// SegStoreSink adapts a local SegStore to StreamSink. Appends cannot fail.
type SegStoreSink struct{ Store *trace.SegStore }

// AppendStreamDataset implements StreamSink.
func (s SegStoreSink) AppendStreamDataset(ds *trace.Dataset) error {
	s.Store.AppendDataset(ds)
	return nil
}

// RunStream executes cfg.Reps replications of fn across the worker pool and
// streams every completed replication's dataset into store. It is
// RunStreamTo with the store wrapped in SegStoreSink; the determinism
// contract below applies unchanged.
func RunStream(ctx context.Context, cfg Config, store *trace.SegStore, fn DatasetReplicator) (*Batch, error) {
	if store == nil {
		return nil, fmt.Errorf("engine: RunStream needs a store")
	}
	return RunStreamTo(ctx, cfg, SegStoreSink{Store: store}, fn)
}

// RunStreamTo executes cfg.Reps replications of fn across the worker pool
// and streams every completed replication's dataset into sink. Completions
// are flushed in replication-index order (out-of-order finishers park in a
// pending buffer), so the sink's append sequence — and therefore every
// figure computed from any resulting store snapshot — is bit-identical for
// any worker count, extending the engine's determinism guarantee to the
// streaming path. Job IDs are namespaced per replication via StreamJobID
// before flushing. Unlike Run, a replication failure (or sink failure)
// aborts the batch.
func RunStreamTo(ctx context.Context, cfg Config, sink StreamSink, fn DatasetReplicator) (*Batch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sink == nil {
		return nil, fmt.Errorf("engine: RunStreamTo needs a sink")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Reps {
		workers = cfg.Reps
	}

	batch := &Batch{
		RootSeed: cfg.RootSeed,
		Results:  make([]RepResult, cfg.Reps),
	}
	for i := range batch.Results {
		batch.Results[i] = RepResult{Rep: i, Seed: dist.StreamSeed(cfg.RootSeed, uint64(i))}
	}

	// pending parks completed datasets until every lower replication has
	// been flushed; whichever worker completes a replication drains the
	// ready prefix, so flushing needs no dedicated goroutine. A sink error
	// latches: nothing further is flushed, preserving the prefix property
	// (everything the sink received is replications 0..k in order).
	var (
		flushMu sync.Mutex
		pending = make(map[int]*trace.Dataset, workers)
		next    int
		sinkErr error
	)
	flush := func(rep int, ds *trace.Dataset) {
		flushMu.Lock()
		defer flushMu.Unlock()
		pending[rep] = ds
		for sinkErr == nil {
			d, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			if err := sink.AppendStreamDataset(namespacedDataset(next, d)); err != nil {
				sinkErr = fmt.Errorf("engine: streaming replication %d: %w", next, err)
				return
			}
			next++
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for rep := range jobs {
				r := &batch.Results[rep]
				r.Started = true
				var ds *trace.Dataset
				ds, r.Sample, r.Err = runOneDS(ctx, fn, rep, r.Seed)
				if r.Err == nil {
					flush(rep, ds)
				}
			}
		}()
	}

dispatch:
	for rep := 0; rep < cfg.Reps; rep++ {
		select {
		case jobs <- rep:
		case <-ctx.Done():
			batch.Canceled = true
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	if !batch.Canceled && ctx.Err() != nil {
		batch.Canceled = true
	}
	for i := range batch.Results {
		if !batch.Results[i].Started {
			batch.Results[i].Err = ctx.Err()
		}
	}
	if sinkErr != nil {
		return batch, sinkErr
	}
	if err := batch.FirstErr(); err != nil {
		return batch, err
	}

	batch.Merged = NewSummary()
	for i := range batch.Results {
		r := &batch.Results[i]
		if r.Started && r.Err == nil {
			batch.Merged.AddSample(r.Rep, r.Sample)
		}
	}
	return batch, nil
}

// namespacedDataset rebuilds ds with rep-namespaced job IDs: records in
// dataset order, each retained series re-keyed to its job's new ID. The
// result appends into a SegStore with exactly the final state of the old
// per-job streaming path (seals fire at the same job counts; series land
// under the same keys), and as one batch it is also one idempotent ingest
// request on the remote path.
func namespacedDataset(rep int, ds *trace.Dataset) *trace.Dataset {
	out := trace.NewDataset(ds.DurationDays)
	for i := range ds.Jobs {
		j := ds.Jobs[i]
		oldID := j.JobID
		j.JobID = StreamJobID(rep, oldID)
		out.Add(j)
		if ts := ds.Series[oldID]; ts != nil {
			keyed := *ts
			keyed.JobID = j.JobID
			out.AttachSeries(&keyed)
		}
	}
	return out
}

// runOneDS invokes the dataset replicator behind the panic barrier.
func runOneDS(ctx context.Context, fn DatasetReplicator, rep int, seed uint64) (ds *trace.Dataset, sample Sample, err error) {
	defer func() {
		if r := recover(); r != nil {
			ds, sample = nil, nil
			err = fmt.Errorf("engine: replication %d panicked: %v", rep, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return fn(ctx, rep, seed)
}
