package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dist"
	"repro/internal/trace"
)

// DatasetReplicator computes one replication and returns its full dataset
// alongside the scalar sample — the streaming analogue of Replicator for
// callers that want the per-job records, not just the folded metrics.
// The same concurrency contract applies: no shared mutable state.
type DatasetReplicator func(ctx context.Context, rep int, seed uint64) (*trace.Dataset, Sample, error)

// repIDBits is the job-ID namespace width left to one replication when
// streaming into a shared store: IDs are offset by (rep+1)<<repIDBits so
// records from different replications never collide. 2^40 jobs per
// replication is far beyond any simulated population.
const repIDBits = 40

// StreamJobID returns the store-wide job ID of job id in replication rep.
func StreamJobID(rep int, id int64) int64 {
	return (int64(rep)+1)<<repIDBits | id
}

// RunStream executes cfg.Reps replications of fn across the worker pool and
// streams every completed replication's dataset into store. Completions are
// flushed in replication-index order (out-of-order finishers park in a
// pending buffer), so the store's append sequence — and therefore every
// figure computed from any of its snapshots — is bit-identical for any
// worker count, extending the engine's determinism guarantee to the
// streaming path. Job IDs are namespaced per replication via StreamJobID
// before appending. Unlike Run, a replication failure aborts the batch: a
// half-streamed store has no meaningful merged interpretation.
func RunStream(ctx context.Context, cfg Config, store *trace.SegStore, fn DatasetReplicator) (*Batch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("engine: RunStream needs a store")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Reps {
		workers = cfg.Reps
	}

	batch := &Batch{
		RootSeed: cfg.RootSeed,
		Results:  make([]RepResult, cfg.Reps),
	}
	for i := range batch.Results {
		batch.Results[i] = RepResult{Rep: i, Seed: dist.StreamSeed(cfg.RootSeed, uint64(i))}
	}

	// pending parks completed datasets until every lower replication has
	// been flushed; whichever worker completes a replication drains the
	// ready prefix, so flushing needs no dedicated goroutine.
	var (
		flushMu sync.Mutex
		pending = make(map[int]*trace.Dataset, workers)
		next    int
	)
	flush := func(rep int, ds *trace.Dataset) {
		flushMu.Lock()
		defer flushMu.Unlock()
		pending[rep] = ds
		for {
			d, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			appendNamespaced(store, next, d)
			next++
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for rep := range jobs {
				r := &batch.Results[rep]
				r.Started = true
				var ds *trace.Dataset
				ds, r.Sample, r.Err = runOneDS(ctx, fn, rep, r.Seed)
				if r.Err == nil {
					flush(rep, ds)
				}
			}
		}()
	}

dispatch:
	for rep := 0; rep < cfg.Reps; rep++ {
		select {
		case jobs <- rep:
		case <-ctx.Done():
			batch.Canceled = true
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	if !batch.Canceled && ctx.Err() != nil {
		batch.Canceled = true
	}
	for i := range batch.Results {
		if !batch.Results[i].Started {
			batch.Results[i].Err = ctx.Err()
		}
	}
	if err := batch.FirstErr(); err != nil {
		return batch, err
	}

	batch.Merged = NewSummary()
	for i := range batch.Results {
		r := &batch.Results[i]
		if r.Started && r.Err == nil {
			batch.Merged.AddSample(r.Rep, r.Sample)
		}
	}
	return batch, nil
}

// appendNamespaced streams ds into store with rep-namespaced job IDs.
// Records append in dataset order; each retained series is re-keyed and
// attached after its job.
func appendNamespaced(store *trace.SegStore, rep int, ds *trace.Dataset) {
	for i := range ds.Jobs {
		j := ds.Jobs[i]
		oldID := j.JobID
		j.JobID = StreamJobID(rep, oldID)
		store.Append(j)
		if ts := ds.Series[oldID]; ts != nil {
			keyed := *ts
			keyed.JobID = j.JobID
			store.AttachSeries(&keyed)
		}
	}
}

// runOneDS invokes the dataset replicator behind the panic barrier.
func runOneDS(ctx context.Context, fn DatasetReplicator, rep int, seed uint64) (ds *trace.Dataset, sample Sample, err error) {
	defer func() {
		if r := recover(); r != nil {
			ds, sample = nil, nil
			err = fmt.Errorf("engine: replication %d panicked: %v", rep, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return fn(ctx, rep, seed)
}
