package engine

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/slurm"
)

// shardedExperiment is the small experiment routed through the sharded
// simulator: two node-group shards per replica cluster.
func shardedExperiment(shardWorkers int) Experiment {
	ex := smallExperiment()
	ex.Sim.Faults = faults.Plan{
		NodeCrashMTBFHours: 200, GPUFatalMTBFHours: 600, MeanRepairHours: 2,
	}
	ex.Sharding = slurm.Sharding{Shards: 2, Workers: shardWorkers}
	return ex
}

// TestShardedRunDeterministicAcrossWorkerCounts nests both parallelism axes:
// replications across engine workers AND node-group shards across shard
// workers inside each replication. The merged summary must be byte-identical
// for every combination — the PR4 fault-run guarantee extended through the
// sharded simulator.
func TestShardedRunDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded replication batch in -short mode")
	}
	const reps = 4
	serial := runBatch(t, 1, reps, shardedExperiment(1).Replicator())
	want := serial.Merged.Fingerprint()
	for _, combo := range []struct{ engineWorkers, shardWorkers int }{
		{1, 4}, {4, 1}, {4, 8}, {8, 2},
	} {
		b := runBatch(t, combo.engineWorkers, reps, shardedExperiment(combo.shardWorkers).Replicator())
		if got := b.Merged.Fingerprint(); got != want {
			var a, bb strings.Builder
			serial.Merged.WriteCanonical(&a)
			b.Merged.WriteCanonical(&bb)
			t.Fatalf("engine=%d shard=%d summary differs from serial:\nserial:\n%s\ngot:\n%s",
				combo.engineWorkers, combo.shardWorkers, a.String(), bb.String())
		}
	}
}

// TestShardedExperimentKeepsSampleKeySet: routing through the sharded
// simulator must not change the replication sample's key set, so sharded
// and unsharded batches remain comparable in the report layer.
func TestShardedExperimentKeepsSampleKeySet(t *testing.T) {
	plain := smallExperiment()
	plain.Sim.Faults = faults.Plan{
		NodeCrashMTBFHours: 200, GPUFatalMTBFHours: 600, MeanRepairHours: 2,
	}
	a := runBatch(t, 2, 2, plain.Replicator())
	b := runBatch(t, 2, 2, shardedExperiment(2).Replicator())
	ak, bk := a.Merged.Metrics(), b.Merged.Metrics()
	if len(ak) != len(bk) {
		t.Fatalf("key sets differ: plain %d keys, sharded %d keys", len(ak), len(bk))
	}
	for i := range ak {
		if ak[i] != bk[i] {
			t.Fatalf("key %d: plain %q, sharded %q", i, ak[i], bk[i])
		}
	}
}
