package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/slurm"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Experiment is the standard replicated pipeline: synthesize a population,
// schedule it on the simulated cluster, characterize the resulting dataset.
// The Seed fields of both configs are overridden per replication with the
// replication's private stream seed.
type Experiment struct {
	Gen workload.Config
	Sim slurm.Config
	// Sharding, when Shards>1, runs each replication through the sharded
	// simulator (slurm.SimulateSharded): the replica's cluster is partitioned
	// into independent node groups that execute concurrently under
	// conservative time-window synchronization. Replication samples are
	// bit-identical for any Sharding.Workers value, so the engine's
	// worker-count determinism guarantee extends through the sharded path.
	Sharding slurm.Sharding
}

// Replicator returns the engine-compatible closure for the experiment. Each
// call builds its own generator and simulator, so replications share no
// mutable state.
func (e Experiment) Replicator() Replicator {
	run := e.DatasetReplicator()
	return func(ctx context.Context, rep int, seed uint64) (Sample, error) {
		_, sm, err := run(ctx, rep, seed)
		return sm, err
	}
}

// DatasetReplicator returns the streaming form of the experiment pipeline:
// the same synthesis → simulation → characterization chain, but handing
// back the replication's dataset for RunStream to append into a segmented
// store alongside the scalar sample.
func (e Experiment) DatasetReplicator() DatasetReplicator {
	return func(ctx context.Context, rep int, seed uint64) (*trace.Dataset, Sample, error) {
		gcfg := e.Gen
		gcfg.Seed = seed
		gen, err := workload.NewGenerator(gcfg)
		if err != nil {
			return nil, nil, fmt.Errorf("replication %d: %w", rep, err)
		}
		specs := gen.GenerateSpecs()
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		scfg := e.Sim
		if scfg.Monitor != nil {
			scfg.MonitorSeed = seed
		}
		if !scfg.Faults.Empty() {
			// Each replication draws its failure streams from its own seed;
			// the faults package salts them away from the workload streams.
			scfg.FaultSeed = seed
		}
		// Submit-time feasibility gate: jobs exceeding the (possibly down-
		// scaled) cluster's capacity are rejected as Slurm would, not left
		// to deadlock the drain.
		specs, rejected := slurm.Feasible(scfg, specs)
		var (
			st slurm.Stats
			ds *trace.Dataset
		)
		if e.Sharding.Shards > 1 {
			run, err := slurm.SimulateSharded(ctx, scfg, specs, e.Sharding)
			if err != nil {
				return nil, nil, fmt.Errorf("replication %d: %w", rep, err)
			}
			// Shard-level rejections (jobs no sub-cluster can hold) count
			// with the submit-time rejections.
			rejected = append(rejected, run.Rejected...)
			st = run.Merged
			ds = run.BuildDataset(gcfg.DurationDays)
		} else {
			sim, err := slurm.NewSimulator(scfg)
			if err != nil {
				return nil, nil, fmt.Errorf("replication %d: %w", rep, err)
			}
			results, rst, err := sim.RunContext(ctx, specs)
			if err != nil {
				return nil, nil, fmt.Errorf("replication %d: %w", rep, err)
			}
			st = rst
			ds = sim.BuildDataset(specs, results, gcfg.DurationDays)
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		sm := Characterize(ds, st)
		sm["jobs_rejected"] = float64(len(rejected))
		if !scfg.Faults.Empty() {
			// Fault metrics appear only under a fault plan, so fault-free
			// samples — and the golden figures built from them — keep their
			// exact key set.
			sm["node_crashes"] = float64(st.NodeCrashes)
			sm["node_drains"] = float64(st.NodeDrains)
			sm["gpu_fatals"] = float64(st.GPUFatals)
			sm["requeues"] = float64(st.Requeues)
			sm["jobs_abandoned"] = float64(st.JobsAbandoned)
			sm["lost_gpu_hours"] = st.LostGPUHours
			sm["recovered_gpu_hours"] = st.RecoveredGPUHours
			sm["down_gpu_hours"] = st.DownGPUHours
			sm["availability_mean"] = st.Availability()
			sm["goodput_frac"] = st.GoodputFraction()
		}
		if len(scfg.MonitorFaults) > 0 {
			sm["monitor_dropped_samples"] = float64(st.MonitorDropped)
			sm["monitor_stalled_jobs"] = float64(st.MonitorStalled)
		}
		return ds, sm, nil
	}
}

// Characterize extracts the standard metric sample from one replication's
// dataset and scheduler stats: the Fig. 3b queue-wait statistics, §V's
// wait-by-size medians, the Fig. 4a utilization medians, the §VI lifecycle
// mix, and the scheduler aggregates. The dataset's columnar index is built
// once and shared by every analysis, so a replication pays for the
// projection and each sort a single time.
func Characterize(ds *trace.Dataset, st slurm.Stats) Sample {
	cols := ds.Columns()
	w := core.WaitsCols(cols)
	u := core.UtilizationCols(cols)
	lc := core.LifecycleCols(cols)

	// Sized for every key assigned below: the 8 literals, 5 wait stats,
	// 4 size classes and 2 per lifecycle category — avoids rehashing the
	// map once per replication on the hot merge path.
	sm := make(Sample, 17+2*int(trace.NumCategories))
	sm["jobs_completed"] = float64(st.Completed)
	sm["max_queue_len"] = float64(st.MaxQueueLen)
	sm["mean_gpu_occupancy"] = st.MeanGPUOccupancy()
	sm["gpu_wait_under_1min_frac"] = w.GPUWaitUnder1MinFrac
	sm["gpu_wait_pct_under_2frac"] = w.GPUWaitPctUnder2Frac
	sm["sm_util_median_pct"] = u.SM.P50
	sm["mem_util_median_pct"] = u.Mem.P50
	sm["memsize_median_pct"] = u.MemSize.P50

	gpuWaits := cols.WaitSec.Sorted()
	cpuWaits := cols.CPUWaitSec.Sorted()
	sm["gpu_wait_median_s"] = stats.QuantileSorted(gpuWaits, 0.5)
	sm["gpu_wait_p90_s"] = stats.QuantileSorted(gpuWaits, 0.9)
	sm["cpu_wait_median_s"] = stats.QuantileSorted(cpuWaits, 0.5)
	sm["cpu_wait_p90_s"] = stats.QuantileSorted(cpuWaits, 0.9)
	sm["wait_median_gap_s"] = sm["cpu_wait_median_s"] - sm["gpu_wait_median_s"]

	for c := 0; c < 4; c++ {
		label := strings.NewReplacer(" ", "", "-", "_", ">", "over").Replace(core.SizeClassLabel(c))
		sm["wait_median_"+strings.ToLower(label)+"_s"] = w.MedianWaitBySize[c]
	}
	for c := trace.Category(0); c < trace.NumCategories; c++ {
		sm["lifecycle_"+c.String()+"_job_frac"] = lc.JobShare[c]
		sm["lifecycle_"+c.String()+"_hour_frac"] = lc.HourShare[c]
	}
	return sm
}
