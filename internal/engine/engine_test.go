package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dist"
	"repro/internal/slurm"
	"repro/internal/workload"
)

// synthReplicator is a cheap deterministic replicator: its metrics are pure
// functions of the replication seed, so any scheduling of the workers must
// reproduce the same merged summary.
func synthReplicator(ctx context.Context, rep int, seed uint64) (Sample, error) {
	rng := dist.New(seed)
	sum := 0.0
	for i := 0; i < 100; i++ {
		sum += rng.Float64()
	}
	return Sample{
		"sum":   sum,
		"first": float64(rng.Uint64() % 1000),
	}, nil
}

func smallExperiment() Experiment {
	gcfg := workload.ScaledConfig(0.005)
	scfg := slurm.DefaultConfig()
	scfg.Cluster.Nodes = 8
	return Experiment{Gen: gcfg, Sim: scfg}
}

func runBatch(t *testing.T, workers, reps int, fn Replicator) *Batch {
	t.Helper()
	b, err := Run(context.Background(), Config{RootSeed: 42, Reps: reps, Workers: workers}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Completed(); got != reps {
		t.Fatalf("completed %d of %d replications; first error: %v", got, reps, b.FirstErr())
	}
	return b
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	const reps = 12
	serial := runBatch(t, 1, reps, synthReplicator)
	want := serial.Merged.Fingerprint()
	for _, workers := range []int{2, 4, 8} {
		b := runBatch(t, workers, reps, synthReplicator)
		if got := b.Merged.Fingerprint(); got != want {
			var a, bb strings.Builder
			serial.Merged.WriteCanonical(&a)
			b.Merged.WriteCanonical(&bb)
			t.Fatalf("workers=%d merged summary differs from serial:\nserial:\n%s\nparallel:\n%s",
				workers, a.String(), bb.String())
		}
	}
}

// TestRunDeterministicFullPipeline proves the headline contract on the real
// pipeline: generator → scheduler → characterization, workers=1 vs
// workers=8, byte-identical merged summaries.
func TestRunDeterministicFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline replication batch in -short mode")
	}
	const reps = 4
	fn := smallExperiment().Replicator()
	serial := runBatch(t, 1, reps, fn)
	parallel := runBatch(t, 8, reps, fn)
	if serial.Merged.Fingerprint() != parallel.Merged.Fingerprint() {
		var a, b strings.Builder
		serial.Merged.WriteCanonical(&a)
		parallel.Merged.WriteCanonical(&b)
		t.Fatalf("workers=1 vs workers=8 summaries differ:\nserial:\n%s\nparallel:\n%s", a.String(), b.String())
	}
	if serial.Merged.N() != reps {
		t.Fatalf("merged %d reps, want %d", serial.Merged.N(), reps)
	}
	// The replicated pipeline must preserve the Fig. 3b ordering in every
	// replication, not just on average.
	gap := serial.Merged.Agg("wait_median_gap_s")
	if gap == nil {
		t.Fatal("missing wait_median_gap_s metric")
	}
	if gap.Min() < 0 {
		t.Fatalf("a replication produced GPU median wait above CPU median wait: min gap %v", gap.Min())
	}
}

func TestRunSeedsAreStreamSeeds(t *testing.T) {
	b := runBatch(t, 3, 5, synthReplicator)
	for i, r := range b.Results {
		if want := dist.StreamSeed(42, uint64(i)); r.Seed != want {
			t.Fatalf("rep %d seed %#x, want StreamSeed %#x", i, r.Seed, want)
		}
	}
}

func TestRunPanicBarrier(t *testing.T) {
	fn := func(ctx context.Context, rep int, seed uint64) (Sample, error) {
		if rep == 2 {
			panic("bad seed")
		}
		return synthReplicator(ctx, rep, seed)
	}
	b, err := Run(context.Background(), Config{RootSeed: 9, Reps: 6, Workers: 4}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Completed(); got != 5 {
		t.Fatalf("completed %d, want 5", got)
	}
	failed := b.Failed()
	if len(failed) != 1 || failed[0].Rep != 2 {
		t.Fatalf("failed set %v, want exactly rep 2", failed)
	}
	if !strings.Contains(failed[0].Err.Error(), "bad seed") {
		t.Fatalf("panic message lost: %v", failed[0].Err)
	}
	if !strings.Contains(failed[0].Err.Error(), "engine_test.go") {
		t.Fatalf("panic stack lost: %v", failed[0].Err)
	}
	// The failed replication is excluded from the merge; the others are not.
	if b.Merged.N() != 5 {
		t.Fatalf("merged %d reps, want 5", b.Merged.N())
	}
	for _, rep := range b.Merged.Reps() {
		if rep == 2 {
			t.Fatal("failed replication leaked into the merged summary")
		}
	}
}

func TestRunReplicatorErrorFailsSoft(t *testing.T) {
	sentinel := errors.New("synthetic failure")
	fn := func(ctx context.Context, rep int, seed uint64) (Sample, error) {
		if rep%2 == 1 {
			return nil, sentinel
		}
		return synthReplicator(ctx, rep, seed)
	}
	b, err := Run(context.Background(), Config{RootSeed: 1, Reps: 4, Workers: 2}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if b.Completed() != 2 || len(b.Failed()) != 2 {
		t.Fatalf("completed=%d failed=%d, want 2/2", b.Completed(), len(b.Failed()))
	}
	if !errors.Is(b.FirstErr(), sentinel) {
		t.Fatalf("FirstErr does not wrap the replicator error: %v", b.FirstErr())
	}
}

func TestRunCancellationReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	release := make(chan struct{})
	fn := func(ctx context.Context, rep int, seed uint64) (Sample, error) {
		if rep == 0 {
			// First replication completes, then cancels the batch.
			s, err := synthReplicator(ctx, rep, seed)
			done.Add(1)
			cancel()
			close(release)
			return s, err
		}
		// Later replications block until the cancellation fired, then honor
		// the context like a well-behaved replicator.
		<-release
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := synthReplicator(ctx, rep, seed)
		done.Add(1)
		return s, err
	}
	b, err := Run(ctx, Config{RootSeed: 5, Reps: 64, Workers: 2}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Canceled {
		t.Fatal("batch not marked canceled")
	}
	if got := b.Completed(); got < 1 || got > 2 {
		t.Fatalf("completed %d replications, want the pre-cancellation 1-2", got)
	}
	if b.Merged.N() != b.Completed() {
		t.Fatalf("merged %d but completed %d", b.Merged.N(), b.Completed())
	}
	// Every result slot is accounted for: completed, failed with a context
	// error, or never started (also context error).
	for i, r := range b.Results {
		switch {
		case r.Started && r.Err == nil:
		case r.Err != nil && errors.Is(r.Err, context.Canceled):
		default:
			t.Fatalf("rep %d in limbo after cancellation: started=%v err=%v", i, r.Started, r.Err)
		}
	}
}

func TestRunRejectsZeroReps(t *testing.T) {
	if _, err := Run(context.Background(), Config{Reps: 0}, synthReplicator); err == nil {
		t.Fatal("expected validation error for zero reps")
	}
}

func TestSummaryMergeMatchesSingle(t *testing.T) {
	whole := NewSummary()
	left, right := NewSummary(), NewSummary()
	for rep := 0; rep < 6; rep++ {
		sm, _ := synthReplicator(context.Background(), rep, dist.StreamSeed(3, uint64(rep)))
		whole.AddSample(rep, sm)
		if rep < 3 {
			left.AddSample(rep, sm)
		} else {
			right.AddSample(rep, sm)
		}
	}
	left.Merge(right)
	if left.Fingerprint() != whole.Fingerprint() {
		t.Fatal("sharded merge differs from sequential fold")
	}
}

func TestSummaryRaggedSamplesStayAligned(t *testing.T) {
	s := NewSummary()
	s.AddSample(0, Sample{"a": 1})
	s.AddSample(1, Sample{"a": 2, "b": 10})
	s.AddSample(2, Sample{"b": 20})
	for _, key := range []string{"a", "b"} {
		if got := s.Agg(key).N(); got != 3 {
			t.Fatalf("metric %q has %d slots, want 3 (NaN-padded)", key, got)
		}
	}
	if got := s.Agg("a").Defined(); got != 2 {
		t.Fatalf("metric a defined %d, want 2", got)
	}
	if got := s.Agg("b").Mean(); got != 15 {
		t.Fatalf("metric b mean %v, want 15", got)
	}
}

func TestRowsDeterministic(t *testing.T) {
	build := func() *Summary {
		s := NewSummary()
		for rep := 0; rep < 8; rep++ {
			sm, _ := synthReplicator(context.Background(), rep, dist.StreamSeed(7, uint64(rep)))
			s.AddSample(rep, sm)
		}
		return s
	}
	r1 := build().Rows(200, 0.95, 99)
	r2 := build().Rows(200, 0.95, 99)
	if fmt.Sprint(r1) != fmt.Sprint(r2) {
		t.Fatal("Rows not deterministic for a fixed CI seed")
	}
	if len(r1) != 2 {
		t.Fatalf("got %d rows, want 2", len(r1))
	}
	for _, r := range r1 {
		if !(r.CI.Lo <= r.Mean && r.Mean <= r.CI.Hi) {
			t.Fatalf("CI does not bracket mean for %s: %+v", r.Metric, r)
		}
	}
}
