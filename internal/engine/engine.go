// Package engine is the parallel multi-replication substrate: it fans N
// independently-seeded replications of a simulation pipeline across a pool
// of worker goroutines and folds their scalar metrics into mergeable
// across-replication summaries (streaming moments, quantiles, bootstrap
// confidence intervals).
//
// The paper's headline claims — the Fig. 3b queue-wait ordering, §V's
// size-independent multi-GPU waits, the §VI lifecycle mix — are statistical
// statements, so a single seeded run can neither attach confidence intervals
// to them nor guard them against regression. The engine makes replication
// cheap (near-linear scaling with workers, see BenchmarkReplications) while
// keeping it exact: replication i always draws from dist.Stream(rootSeed, i)
// and summaries are merged in replication-index order, so the merged output
// is bit-identical whether one worker ran everything or eight raced through
// the batch. Determinism under parallelism is proven by tests
// (TestRunDeterministicAcrossWorkerCounts), not asserted.
//
// One bad seed fails soft: each replication runs behind a panic barrier that
// converts a panic into a recorded per-replication error, so the rest of the
// batch completes and the caller can see exactly which seed died and why.
// Cancellation via context.Context stops handing out new replications and
// returns the merged summary of everything that finished.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/dist"
)

// Sample is one replication's named scalar metrics.
type Sample map[string]float64

// Replicator computes one replication. rep is the replication index in
// [0, Reps); seed is the replication's private RNG stream seed, a pure
// function of (root seed, rep) — implementations must derive all their
// randomness from it and must not share mutable state across calls, because
// the engine invokes them concurrently.
type Replicator func(ctx context.Context, rep int, seed uint64) (Sample, error)

// Config parameterizes a replication batch.
type Config struct {
	// RootSeed is split into per-replication streams via dist.StreamSeed.
	RootSeed uint64
	// Reps is the number of replications to run.
	Reps int
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Reps < 1 {
		return fmt.Errorf("engine: need at least one replication, got %d", c.Reps)
	}
	return nil
}

// RepResult is one replication's outcome.
type RepResult struct {
	Rep  int
	Seed uint64
	// Sample holds the metrics when the replication succeeded.
	Sample Sample
	// Err records a failure: the replicator's error, a recovered panic
	// (with stack), or the batch context's error for replications that were
	// never started before cancellation.
	Err error
	// Started distinguishes replications that ran (successfully or not)
	// from those skipped by cancellation.
	Started bool
}

// Batch is a completed (possibly partial) replication batch.
type Batch struct {
	RootSeed uint64
	// Results holds one entry per requested replication, indexed by rep.
	Results []RepResult
	// Merged summarizes the successful replications, folded in replication-
	// index order regardless of worker scheduling.
	Merged *Summary
	// Canceled reports that the context fired before every replication ran.
	Canceled bool
}

// Completed returns the number of successful replications.
func (b *Batch) Completed() int {
	n := 0
	for i := range b.Results {
		if b.Results[i].Started && b.Results[i].Err == nil {
			n++
		}
	}
	return n
}

// Failed returns the replications that started and errored (or panicked).
func (b *Batch) Failed() []RepResult {
	var out []RepResult
	for i := range b.Results {
		if b.Results[i].Started && b.Results[i].Err != nil {
			out = append(out, b.Results[i])
		}
	}
	return out
}

// FirstErr returns the lowest-index recorded failure, or nil.
func (b *Batch) FirstErr() error {
	for i := range b.Results {
		if b.Results[i].Started && b.Results[i].Err != nil {
			return fmt.Errorf("engine: replication %d (seed %#x): %w",
				b.Results[i].Rep, b.Results[i].Seed, b.Results[i].Err)
		}
	}
	return nil
}

// Run executes cfg.Reps replications of fn across the worker pool and merges
// their samples. It returns an error only for invalid configuration; per-
// replication failures are recorded in the batch (fail-soft), and
// cancellation returns the partial batch with Canceled set.
func Run(ctx context.Context, cfg Config, fn Replicator) (*Batch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Reps {
		workers = cfg.Reps
	}

	batch := &Batch{
		RootSeed: cfg.RootSeed,
		Results:  make([]RepResult, cfg.Reps),
	}
	for i := range batch.Results {
		batch.Results[i] = RepResult{Rep: i, Seed: dist.StreamSeed(cfg.RootSeed, uint64(i))}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for rep := range jobs {
				r := &batch.Results[rep]
				r.Started = true
				r.Sample, r.Err = runOne(ctx, fn, rep, r.Seed)
			}
		}()
	}

dispatch:
	for rep := 0; rep < cfg.Reps; rep++ {
		select {
		case jobs <- rep:
		case <-ctx.Done():
			batch.Canceled = true
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	// A replication may also observe cancellation after being dispatched.
	if !batch.Canceled && ctx.Err() != nil {
		batch.Canceled = true
	}
	for i := range batch.Results {
		if !batch.Results[i].Started {
			batch.Results[i].Err = ctx.Err()
		}
	}

	// Merge in replication-index order: worker scheduling decided *when*
	// each sample was produced, never the fold order, so the summary is a
	// pure function of (root seed, completed set).
	batch.Merged = NewSummary()
	for i := range batch.Results {
		r := &batch.Results[i]
		if r.Started && r.Err == nil {
			batch.Merged.AddSample(r.Rep, r.Sample)
		}
	}
	return batch, nil
}

// runOne invokes the replicator behind the panic barrier.
func runOne(ctx context.Context, fn Replicator, rep int, seed uint64) (sample Sample, err error) {
	defer func() {
		if r := recover(); r != nil {
			sample = nil
			err = fmt.Errorf("engine: replication %d panicked: %v\n%s", rep, r, debug.Stack())
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return fn(ctx, rep, seed)
}
