package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/slurm"
)

func predictSchedPlan(shards, workers int) PredictSchedPlan {
	plan := DefaultPredictSchedPlan(0.02, 11)
	plan.ReservationAgeSec = 900
	plan.Sharding = slurm.Sharding{Shards: shards, Workers: workers}
	return plan
}

func marshalStudy(t *testing.T, r *PredictSchedResult) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPredictSchedStudyShape: the ladder runs end to end, the conservative
// fence records no prediction stats, the forecaster scores completions, and
// the accuracy curve behaves (no decisions without telemetry, decisions with
// it, bounded accuracy, runtime forecasts everywhere).
func TestPredictSchedStudyShape(t *testing.T) {
	res, err := RunPredictSched(context.Background(), predictSchedPlan(1, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 6 {
		t.Fatalf("policy ladder has %d entries, want 6", len(res.Policies))
	}
	byName := map[string]PredictPolicyOutcome{}
	for _, p := range res.Policies {
		byName[p.Name] = p
		if len(p.ClassWaits) == 0 {
			t.Fatalf("%s: no class wait CDFs", p.Name)
		}
		for _, cw := range p.ClassWaits {
			if len(cw.QuantileSec) != len(WaitQuantilePs) {
				t.Fatalf("%s/%s: %d quantiles, want %d", p.Name, cw.Category, len(cw.QuantileSec), len(WaitQuantilePs))
			}
			for qi := 1; qi < len(cw.QuantileSec); qi++ {
				if cw.QuantileSec[qi] < cw.QuantileSec[qi-1] {
					t.Fatalf("%s/%s: quantiles not monotone: %v", p.Name, cw.Category, cw.QuantileSec)
				}
			}
		}
	}
	cons := byName["conservative"]
	if cons.Stats.PredictHits+cons.Stats.PredictMisses != 0 || cons.Stats.PredictedBackfills != 0 {
		t.Fatalf("conservative run recorded prediction stats: %+v", cons.Stats)
	}
	pred := byName["predicted"]
	if pred.Stats.PredictHits+pred.Stats.PredictMisses == 0 {
		t.Fatal("predicted run scored no completions")
	}
	if pred.Stats.Completed != cons.Stats.Completed {
		t.Fatalf("completion count moved across policies: %d vs %d", pred.Stats.Completed, cons.Stats.Completed)
	}

	for _, pt := range res.Accuracy {
		if pt.PrefixSamples == 0 && pt.Decided != 0 {
			t.Fatalf("k=0 decided %d classifications without telemetry", pt.Decided)
		}
		if pt.Accuracy < 0 || pt.Accuracy > 1 {
			t.Fatalf("k=%d accuracy %v out of range", pt.PrefixSamples, pt.Accuracy)
		}
		if pt.Forecasts == 0 {
			t.Fatalf("k=%d produced no runtime forecasts", pt.PrefixSamples)
		}
	}
	last := res.Accuracy[len(res.Accuracy)-1]
	if last.Decided == 0 {
		t.Fatalf("k=%d never decided a class; the curve is vacuous", last.PrefixSamples)
	}
}

// TestPredictSchedBitIdenticalAcrossWorkers: the full study result — every
// policy's CDFs and counters, and the accuracy curve — serializes to the
// same bytes whatever the engine worker count, at a fixed shard count.
func TestPredictSchedBitIdenticalAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	ref, err := RunPredictSched(ctx, predictSchedPlan(2, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	refJSON := marshalStudy(t, ref)
	for _, workers := range []int{2, 4} {
		got, err := RunPredictSched(ctx, predictSchedPlan(2, workers), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refJSON, marshalStudy(t, got)) {
			t.Fatalf("workers=%d study output diverged from workers=1", workers)
		}
	}
}

// TestPredictSchedAcrossShardCounts: the accuracy replay never touches the
// DES, so it is byte-identical across shard counts; and Shards=1 runs the
// path that slurm's own tests pin byte-identical to the plain simulator, so
// repeated Shards=1 runs reproduce the whole study exactly.
func TestPredictSchedAcrossShardCounts(t *testing.T) {
	ctx := context.Background()
	one, err := RunPredictSched(ctx, predictSchedPlan(1, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	two, err := RunPredictSched(ctx, predictSchedPlan(2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	accOne, err := json.Marshal(one.Accuracy)
	if err != nil {
		t.Fatal(err)
	}
	accTwo, err := json.Marshal(two.Accuracy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(accOne, accTwo) {
		t.Fatal("accuracy curve depends on the shard count")
	}
	oneAgain, err := RunPredictSched(ctx, predictSchedPlan(1, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalStudy(t, one), marshalStudy(t, oneAgain)) {
		t.Fatal("shards=1 study not reproducible")
	}
}
