package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"repro/internal/stats"
)

// Summary holds the across-replication aggregates of a batch, one
// stats.Agg per metric. Samples must be folded in replication-index order
// (Run guarantees this); the canonical serialization is then a pure function
// of the folded samples, which is what the determinism tests fingerprint.
type Summary struct {
	aggs map[string]*stats.Agg
	reps []int // replication indices folded, in fold order
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{aggs: make(map[string]*stats.Agg)}
}

// AddSample folds one replication's metrics. A metric unseen so far is
// back-filled with NaN for earlier replications, and a metric missing from
// this sample records NaN, so every aggregate stays aligned with Reps().
func (s *Summary) AddSample(rep int, sm Sample) {
	for key := range sm {
		if s.aggs[key] == nil {
			a := &stats.Agg{}
			for range s.reps {
				a.Add(math.NaN())
			}
			s.aggs[key] = a
		}
	}
	for key, a := range s.aggs {
		if v, ok := sm[key]; ok {
			a.Add(v)
		} else {
			a.Add(math.NaN())
		}
	}
	s.reps = append(s.reps, rep)
}

// Reps returns the folded replication indices in fold order.
func (s *Summary) Reps() []int { return s.reps }

// N returns the number of folded replications.
func (s *Summary) N() int { return len(s.reps) }

// Metrics returns the metric names in sorted order.
func (s *Summary) Metrics() []string {
	keys := make([]string, 0, len(s.aggs))
	for k := range s.aggs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Agg returns the aggregate for one metric, or nil if unknown.
func (s *Summary) Agg(metric string) *stats.Agg { return s.aggs[metric] }

// Merge folds another summary's replications after this one's, preserving
// both fold orders. Shards merged in replication order reproduce the
// single-summary result exactly.
func (s *Summary) Merge(o *Summary) {
	for key := range o.aggs {
		if s.aggs[key] == nil {
			a := &stats.Agg{}
			for range s.reps {
				a.Add(math.NaN())
			}
			s.aggs[key] = a
		}
	}
	for key, a := range s.aggs {
		if oa := o.aggs[key]; oa != nil {
			a.Merge(oa)
		} else {
			for range o.reps {
				a.Add(math.NaN())
			}
		}
	}
	s.reps = append(s.reps, o.reps...)
}

// WriteCanonical emits the deterministic text form: one line per metric,
// keys sorted, per-replication values in fold order with exact (round-
// tripping) float formatting, preceded by the folded replication indices.
// Two summaries built from the same (root seed, completed set) are byte-
// identical here no matter how many workers produced the samples.
func (s *Summary) WriteCanonical(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "reps=%v\n", s.reps); err != nil {
		return err
	}
	for _, key := range s.Metrics() {
		if _, err := io.WriteString(w, key); err != nil {
			return err
		}
		sep := "="
		for _, v := range s.aggs[key].Values() {
			if _, err := io.WriteString(w, sep+strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
			sep = ","
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Fingerprint returns the SHA-256 of the canonical form, the value the
// determinism tests compare across worker counts.
func (s *Summary) Fingerprint() string {
	h := sha256.New()
	if err := s.WriteCanonical(h); err != nil {
		// sha256.digest.Write never fails; an error here means a broken
		// io.Writer contract, which is a programming error.
		panic(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Row is one metric's rendered across-replication statistics.
type Row struct {
	Metric string
	N      int
	Mean   float64
	StdErr float64
	CI     stats.CI
	Min    float64
	Median float64
	Max    float64
}

// Rows computes the report rows: mean ± stderr with a bootstrap CI of the
// mean at the given level, plus the replication-distribution extremes. The
// bootstrap reseeds per metric from ciSeed so rows are individually
// deterministic.
func (s *Summary) Rows(resamples int, level float64, ciSeed uint64) []Row {
	metrics := s.Metrics()
	rows := make([]Row, 0, len(metrics))
	for i, key := range metrics {
		a := s.aggs[key]
		rows = append(rows, Row{
			Metric: key,
			N:      a.Defined(),
			Mean:   a.Mean(),
			StdErr: a.StdErr(),
			CI:     a.MeanCI(resamples, level, ciSeed+uint64(i)),
			Min:    a.Min(),
			Median: a.Median(),
			Max:    a.Max(),
		})
	}
	return rows
}
