package engine

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// streamStore runs the small experiment through RunStream with the given
// worker count and segment size, returning the batch and the filled store.
func streamStore(t *testing.T, workers, segJobs int) (*Batch, *trace.SegStore) {
	t.Helper()
	e := smallExperiment()
	st := trace.NewSegStore(trace.SegConfig{
		DurationDays: e.Gen.DurationDays,
		SegmentJobs:  segJobs,
	})
	b, err := RunStream(context.Background(), Config{RootSeed: 5, Reps: 4, Workers: workers},
		st, e.DatasetReplicator())
	if err != nil {
		t.Fatal(err)
	}
	return b, st
}

// TestRunStreamDeterministicAcrossWorkerCounts extends the engine's
// determinism guarantee to the streaming path: the store's contents (every
// figure over its snapshot) and the merged summary must be bit-identical
// whether one worker streamed the batch or several raced through it, for
// different segment sizes too.
func TestRunStreamDeterministicAcrossWorkerCounts(t *testing.T) {
	refBatch, refStore := streamStore(t, 1, 500)
	want := core.CharacterizeSeg(refStore.Snapshot(), 1)
	wantSummary := refBatch.Merged.Fingerprint()
	for _, workers := range []int{2, 4} {
		for _, segJobs := range []int{100, 5000} {
			b, st := streamStore(t, workers, segJobs)
			got := core.CharacterizeSeg(st.Snapshot(), workers)
			label := fmt.Sprintf("workers=%d/seg=%d", workers, segJobs)
			if gs, ws := fmt.Sprintf("%v", got), fmt.Sprintf("%v", want); gs != ws {
				t.Errorf("%s: streamed figures differ from single-worker run", label)
			}
			if gs := b.Merged.Fingerprint(); gs != wantSummary {
				t.Errorf("%s: merged summary differs", label)
			}
		}
	}
}

// TestRunStreamMatchesRun pins the scalar side: RunStream's merged summary
// equals Run's for the same configuration (the dataset hand-off must not
// perturb the sample pipeline).
func TestRunStreamMatchesRun(t *testing.T) {
	e := smallExperiment()
	cfg := Config{RootSeed: 9, Reps: 3, Workers: 2}
	runBatch, err := Run(context.Background(), cfg, e.Replicator())
	if err != nil {
		t.Fatal(err)
	}
	st := trace.NewSegStore(trace.SegConfig{DurationDays: e.Gen.DurationDays})
	streamBatch, err := RunStream(context.Background(), cfg, st, e.DatasetReplicator())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := streamBatch.Merged.Fingerprint(), runBatch.Merged.Fingerprint(); got != want {
		t.Errorf("merged summaries differ\n want %.300s\n  got %.300s", want, got)
	}
	if st.Len() == 0 {
		t.Fatal("store is empty after RunStream")
	}
	if err := st.Validate(); err != nil {
		t.Fatalf("streamed store invalid: %v", err)
	}
}

// TestStreamJobIDNamespacing checks the per-replication ID namespace is
// collision-free and order-preserving.
func TestStreamJobIDNamespacing(t *testing.T) {
	if StreamJobID(0, 1) == StreamJobID(1, 1) {
		t.Error("replications collide")
	}
	if StreamJobID(0, 7) <= StreamJobID(0, 6) {
		t.Error("order not preserved within a replication")
	}
	if StreamJobID(2, 1<<repIDBits-1) >= StreamJobID(3, 0) {
		t.Error("replication namespaces overlap")
	}
}
