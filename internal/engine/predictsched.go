package engine

// The predictsched study (ISSUE 7): requested-limit vs prediction-aware
// backfill, end to end. One synthesized population is scheduled under a
// ladder of prediction policies — the conservative reservation fence, the
// §IV requested-limit baseline, the forecaster-driven policy, and a
// mispredict-robustness sweep (systematically under- and over-estimating
// users, priors frozen early) — and each run is reduced to per-lifecycle-
// class queue-wait CDFs plus the scheduler's prediction counters. Alongside
// the DES comparison, the study replays the population through the online
// predictors at several prefix lengths to produce the accuracy-vs-prefix
// curves of the Supercloud challenge's partial-telemetry task.
//
// Everything here is deterministic: runs go through slurm.SimulateSharded
// (bit-identical for any worker count; Shards=1 byte-identical to the plain
// simulator), per-class waits are folded in shard-index order, the accuracy
// replay walks specs in submit order, and the result holds only slices and
// scalars — no maps — so a JSON serialization of the result is a fingerprint
// the determinism tests can compare byte for byte.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/lifecycle"
	"repro/internal/monitor"
	"repro/internal/predict"
	"repro/internal/slurm"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// WaitQuantilePs is the fixed grid the per-class wait CDFs are sampled on.
var WaitQuantilePs = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}

// PredictSchedPlan parameterizes the study.
type PredictSchedPlan struct {
	// Gen synthesizes the population (used when RunPredictSched is given no
	// specs).
	Gen workload.Config
	// Nodes down-scales the cluster so queues actually form; 0 keeps the
	// paper's 224.
	Nodes int
	// ReservationAgeSec arms reservations inside the scaled horizon; 0 keeps
	// the production 6 h.
	ReservationAgeSec float64
	// Sharding selects the simulation mode for every policy run.
	Sharding slurm.Sharding
	// PrefixKs are the prefix lengths (in monitor samples) of the accuracy
	// curve; 0 entries mean "submit-time only". Empty uses {0,1,3,5,10,30}.
	PrefixKs []int
	// PrefixIntervalSec is the prefix sampling cadence (default 60 s).
	PrefixIntervalSec float64
	// MonitorSeed seeds the prefix-telemetry noise streams.
	MonitorSeed uint64
}

// DefaultPredictSchedPlan returns a study plan at the given population scale.
func DefaultPredictSchedPlan(scale float64, seed uint64) PredictSchedPlan {
	gcfg := workload.ScaledConfig(scale)
	gcfg.Seed = seed
	return PredictSchedPlan{
		Gen:               gcfg,
		Nodes:             4,
		ReservationAgeSec: 1800,
		Sharding:          slurm.Sharding{Shards: 1},
		PrefixIntervalSec: 60,
		MonitorSeed:       seed,
	}
}

// ClassWaitCDF is one lifecycle class's queue-wait distribution under one
// policy: quantiles on the WaitQuantilePs grid.
type ClassWaitCDF struct {
	Category    string
	Jobs        int
	QuantileSec []float64
}

// PredictPolicyOutcome is one policy's reduced run.
type PredictPolicyOutcome struct {
	Name        string
	Stats       slurm.Stats
	MeanWaitSec float64
	ClassWaits  []ClassWaitCDF
}

// PrefixAccuracyPoint is one prefix length's online-prediction quality,
// evaluated with the predict→observe no-leakage replay.
type PrefixAccuracyPoint struct {
	PrefixSamples int
	// Classifier quality over GPU jobs whose class the model would decide.
	Decided  int
	Correct  int
	Accuracy float64
	// Runtime forecast quality: the class-median estimate when the prefix
	// classifier decides, the submit-time cascade otherwise.
	Forecasts     int
	RuntimeMAESec float64
}

// PredictSchedResult is the study's full, JSON-serializable output.
type PredictSchedResult struct {
	Jobs     int
	Policies []PredictPolicyOutcome
	Accuracy []PrefixAccuracyPoint
}

// predictPolicyLadder is the fixed policy sweep: baseline fences, the
// forecaster, and the mispredict-robustness variants.
func predictPolicyLadder(plan PredictSchedPlan) []struct {
	name string
	pol  slurm.PredictPolicy
} {
	iv := plan.PrefixIntervalSec
	if iv <= 0 {
		iv = 60
	}
	forecast := slurm.PredictPolicy{Enabled: true, PrefixSamples: 8, PrefixIntervalSec: iv}
	underest, overest, stale := forecast, forecast, forecast
	underest.ObsScale = 0.25
	overest.ObsScale = 4
	stale.FreezeAfterObs = 50
	return []struct {
		name string
		pol  slurm.PredictPolicy
	}{
		{"conservative", slurm.PredictPolicy{}},
		{"requested-limit", slurm.PredictPolicy{Enabled: true, UseRequestedLimit: true}},
		{"predicted", forecast},
		{"predicted-underest", underest},
		{"predicted-overest", overest},
		{"predicted-stale", stale},
	}
}

// RunPredictSched executes the study. With nil specs the population is
// synthesized from plan.Gen; passing specs lets callers (cmd/whatif) reuse
// an already-generated population. The same feasibility-filtered spec set
// feeds every policy, so the CDFs compare like with like.
func RunPredictSched(ctx context.Context, plan PredictSchedPlan, specs []workload.JobSpec) (*PredictSchedResult, error) {
	if specs == nil {
		gen, err := workload.NewGenerator(plan.Gen)
		if err != nil {
			return nil, err
		}
		specs = gen.GenerateSpecs()
	}
	base := slurm.DefaultConfig()
	if plan.Nodes > 0 {
		base.Cluster.Nodes = plan.Nodes
	}
	if plan.ReservationAgeSec > 0 {
		base.Policy.ReservationAgeSec = plan.ReservationAgeSec
	}
	base.MonitorSeed = plan.MonitorSeed
	specs, _ = slurm.Feasible(base, specs)

	res := &PredictSchedResult{Jobs: len(specs)}
	for _, entry := range predictPolicyLadder(plan) {
		cfg := base
		cfg.Policy.Predict = entry.pol
		run, err := slurm.SimulateSharded(ctx, cfg, specs, plan.Sharding)
		if err != nil {
			return nil, fmt.Errorf("predictsched %s: %w", entry.name, err)
		}
		res.Policies = append(res.Policies, reducePolicyRun(entry.name, run))
	}
	res.Accuracy = prefixAccuracy(specs, plan)
	return res, nil
}

// reducePolicyRun folds one policy's sharded run into its outcome: waits are
// gathered per lifecycle class in shard-index order (submit order within a
// shard), sorted, and sampled on the quantile grid.
func reducePolicyRun(name string, run *slurm.ShardedRun) PredictPolicyOutcome {
	var waits [trace.NumCategories][]float64
	var agg stats.Agg
	for i := range run.Specs {
		for j := range run.Specs[i] {
			sp := &run.Specs[i][j]
			r, ok := run.Results[i][sp.ID]
			if !ok {
				continue
			}
			cat := lifecycle.ClassifyParts(sp.Exit, sp.Interface)
			waits[cat] = append(waits[cat], r.WaitSec)
			agg.Add(r.WaitSec)
		}
	}
	out := PredictPolicyOutcome{Name: name, Stats: run.Merged, MeanWaitSec: agg.Mean()}
	for cat := trace.Category(0); cat < trace.NumCategories; cat++ {
		w := waits[cat]
		sort.Float64s(w)
		qs := make([]float64, len(WaitQuantilePs))
		for qi, p := range WaitQuantilePs {
			qs[qi] = stats.QuantileSorted(w, p)
		}
		out.ClassWaits = append(out.ClassWaits, ClassWaitCDF{
			Category:    cat.String(),
			Jobs:        len(w),
			QuantileSec: qs,
		})
	}
	return out
}

// prefixAccuracy replays the population through the online predictors at
// each prefix length, strictly predict-then-observe in submit order (specs
// arrive sorted by SubmitSec), so no job's own outcome leaks into its
// prediction. Each prefix length gets an independent classifier; the runtime
// forecaster is shared (it never sees prefix telemetry).
func prefixAccuracy(specs []workload.JobSpec, plan PredictSchedPlan) []PrefixAccuracyPoint {
	ks := plan.PrefixKs
	if len(ks) == 0 {
		ks = []int{0, 1, 3, 5, 10, 30}
	}
	iv := plan.PrefixIntervalSec
	if iv <= 0 {
		iv = 60
	}
	points := make([]PrefixAccuracyPoint, len(ks))
	for i, k := range ks {
		points[i].PrefixSamples = k
	}
	classifiers := make([]predict.OnlineClassifier, len(ks))
	fc := predict.NewRuntimeForecaster()
	absErr := make([]float64, len(ks))

	feats := func(sp *workload.JobSpec, k int) predict.Features {
		var d monitor.PrefixDigest
		rng := monitor.PrefixRNG(plan.MonitorSeed, sp.ID)
		for _, prof := range sp.Profiles {
			d.Accumulate(prof, k, iv, rng)
		}
		return predict.MakeFeatures(d.SMMean(), d.MemMean(), d.MemSizeMean(), d.ActiveFrac(),
			sp.Interface == trace.Interactive, sp.NumGPUs > 1, sp.LimitSec/3600)
	}

	for i := range specs {
		sp := &specs[i]
		truth := lifecycle.ClassifyParts(sp.Exit, sp.Interface)
		hasPrefix := sp.IsGPU() && len(sp.Profiles) > 0
		for ki, k := range ks {
			pt := &points[ki]
			// Classify from the first-k samples (k=0: no telemetry, the
			// classifier never decides and the forecast is submit-time only).
			est, ok := 0.0, false
			if k > 0 && hasPrefix {
				f := feats(sp, k)
				if cat, decided := classifiers[ki].Classify(f); decided {
					pt.Decided++
					if cat == truth {
						pt.Correct++
					}
					est, ok = fc.PredictClass(cat, sp.LimitSec)
				}
			}
			if !ok {
				est, ok = fc.Predict(sp.User, sp.LimitSec)
			}
			if ok {
				pt.Forecasts++
				if diff := sp.RunSec - est; diff >= 0 {
					absErr[ki] += diff
				} else {
					absErr[ki] -= diff
				}
			}
		}
		// Observe only after every prefix length predicted this job.
		fc.Observe(sp.User, truth, sp.RunSec)
		if hasPrefix {
			for ki, k := range ks {
				if k > 0 {
					classifiers[ki].Observe(feats(sp, k), truth)
				}
			}
		}
	}
	for ki := range points {
		pt := &points[ki]
		if pt.Decided > 0 {
			pt.Accuracy = float64(pt.Correct) / float64(pt.Decided)
		}
		if pt.Forecasts > 0 {
			pt.RuntimeMAESec = absErr[ki] / float64(pt.Forecasts)
		}
	}
	return points
}
