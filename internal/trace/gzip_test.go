package trace

import (
	"bytes"
	"testing"
)

func TestGzipCSVRoundTrip(t *testing.T) {
	d := NewDataset(125)
	for i := int64(1); i <= 50; i++ {
		d.Add(gpuJob(i, int(i)%5, float64(i)*60, 1+int(i)%3))
	}
	var buf bytes.Buffer
	if err := d.WriteCSVGZ(&buf); err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if err := d.WriteCSV(&plain); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= plain.Len() {
		t.Fatalf("gzip did not compress: %d vs %d bytes", buf.Len(), plain.Len())
	}
	back, err := ReadCSVGZ(&buf, 125)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 50 {
		t.Fatalf("round trip jobs = %d", len(back.Jobs))
	}
	// CSV drops per-GPU detail; compare the flattened record.
	got, want := back.Jobs[9], d.Jobs[9]
	if got.JobID != want.JobID || got.RunSec != want.RunSec || got.GPU != want.GPU {
		t.Fatalf("record mismatch: %+v vs %+v", got, want)
	}
}

func TestGzipJSONRoundTrip(t *testing.T) {
	d := NewDataset(125)
	d.Add(gpuJob(1, 0, 600, 2))
	var buf bytes.Buffer
	if err := d.WriteJSONGZ(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONGZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 1 || len(back.Jobs[0].PerGPU) != 2 {
		t.Fatal("json gz round trip lost data")
	}
}

func TestGzipRejectsGarbage(t *testing.T) {
	if _, err := ReadCSVGZ(bytes.NewBufferString("not gzip"), 1); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSONGZ(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty accepted")
	}
}
