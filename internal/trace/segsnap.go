package trace

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// This file is the snapshot side of the durability layer (internal/durable):
// an exact export of a SegStore's logical state and a restore that rebuilds
// a store whose every future query is byte-identical to the original's.
//
// The contract is stronger than "same jobs": /v1/summary merges per-segment
// streaming moments in segment order, so the recovered store must reproduce
// the exact segment geometry AND each segment's digest floats verbatim —
// re-folding the jobs would re-associate the Welford merges a compaction
// performed and drift by ulps. Figures, by contrast, depend only on append
// order, which the job list preserves. Restore therefore re-appends the
// jobs (rebuilding every column bit-identically) while cutting segments at
// the recorded boundaries with the recorded aggregates.

// SegSummaryState is the wire form of a SegSummary: counts plus the exact
// internal state of every streaming accumulator.
type SegSummaryState struct {
	Jobs     int `json:"jobs"`
	GPUJobs  int `json:"gpu_jobs"`
	CPUJobs  int `json:"cpu_jobs"`
	MultiGPU int `json:"multi_gpu"`

	GPUHours stats.StreamingState                     `json:"gpu_hours"`
	WaitSec  stats.StreamingState                     `json:"wait_sec"`
	RunMin   stats.StreamingState                     `json:"run_min"`
	MeanUtil [metrics.NumMetrics]stats.StreamingState `json:"mean_util"`
}

// State exports the digest's exact internal state.
func (s *SegSummary) State() SegSummaryState {
	out := SegSummaryState{
		Jobs: s.Jobs, GPUJobs: s.GPUJobs, CPUJobs: s.CPUJobs, MultiGPU: s.MultiGPU,
		GPUHours: s.GPUHours.State(), WaitSec: s.WaitSec.State(), RunMin: s.RunMin.State(),
	}
	for m := range s.MeanUtil {
		out.MeanUtil[m] = s.MeanUtil[m].State()
	}
	return out
}

// SegSummaryFromState reconstructs the digest State exported.
func SegSummaryFromState(st SegSummaryState) SegSummary {
	out := SegSummary{
		Jobs: st.Jobs, GPUJobs: st.GPUJobs, CPUJobs: st.CPUJobs, MultiGPU: st.MultiGPU,
		GPUHours: stats.FromState(st.GPUHours),
		WaitSec:  stats.FromState(st.WaitSec),
		RunMin:   stats.FromState(st.RunMin),
	}
	for m := range out.MeanUtil {
		out.MeanUtil[m] = stats.FromState(st.MeanUtil[m])
	}
	return out
}

// SegBoundary records one sealed segment: its end in appended-job order
// (starts are implied by the previous boundary) and its digest verbatim.
type SegBoundary struct {
	EndJob int             `json:"end_job"`
	Agg    SegSummaryState `json:"agg"`
}

// StagedEntry is one parked telemetry record awaiting its §II join.
type StagedEntry struct {
	JobID  int64                     `json:"job_id"`
	PerGPU []metrics.MetricSummaries `json:"per_gpu,omitempty"`
	Series *TimeSeries               `json:"series,omitempty"`
}

// SegStoreState is the complete logical state of a SegStore: jobs in append
// order (post-join — staged telemetry already adopted by its record), the
// retained series, the still-parked telemetry, and the sealed-segment
// geometry with verbatim digests. Everything a restore needs; nothing
// derivable is stored (columns, sorted runs and indexes rebuild from the
// job sequence bit-identically).
type SegStoreState struct {
	Jobs     []JobRecord   `json:"jobs"`
	Series   []*TimeSeries `json:"series,omitempty"`
	Staged   []StagedEntry `json:"staged,omitempty"`
	Segments []SegBoundary `json:"segments,omitempty"`
}

// ExportState captures the store's logical state. The returned slices are
// fresh copies of the store's bookkeeping (records are copied by value;
// series and per-GPU digests are shared immutable data), safe to serialize
// concurrently with later appends.
func (st *SegStore) ExportState() *SegStoreState {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := &SegStoreState{Jobs: make([]JobRecord, 0, st.nJobs)}
	for _, chunk := range st.chunks {
		s.Jobs = append(s.Jobs, chunk...)
	}
	for _, id := range sortedSeriesKeys(st.series) {
		s.Series = append(s.Series, st.series[id])
	}
	stagedIDs := make([]int64, 0, len(st.staged))
	for id := range st.staged {
		stagedIDs = append(stagedIDs, id)
	}
	sort.Slice(stagedIDs, func(a, b int) bool { return stagedIDs[a] < stagedIDs[b] })
	for _, id := range stagedIDs {
		tel := st.staged[id]
		s.Staged = append(s.Staged, StagedEntry{JobID: id, PerGPU: tel.perGPU, Series: tel.series})
	}
	for _, seg := range st.sealed {
		s.Segments = append(s.Segments, SegBoundary{EndJob: seg.endJob, Agg: seg.agg.State()})
	}
	return s
}

// RestoreSegStore rebuilds a store from an exported state. Jobs re-append in
// order (so every column, index and sorted view rebuilds exactly as the
// original built them), segments are cut at the recorded boundaries with the
// recorded digests, and the tail digest re-accumulates over the jobs past
// the last boundary — the same Add sequence the original folded. Automatic
// seal/compaction thresholds do not fire during restore; the recorded
// geometry already reflects every seal and compaction the original
// performed.
func RestoreSegStore(cfg SegConfig, s *SegStoreState) (*SegStore, error) {
	prev := 0
	for i, b := range s.Segments {
		if b.EndJob <= prev || b.EndJob > len(s.Jobs) {
			return nil, fmt.Errorf("trace: snapshot segment %d ends at job %d (prev %d, jobs %d)",
				i, b.EndJob, prev, len(s.Jobs))
		}
		prev = b.EndJob
	}
	st := NewSegStore(cfg)
	st.mu.Lock()
	defer st.mu.Unlock()
	segIdx := 0
	for i := range s.Jobs {
		st.appendLocked(s.Jobs[i])
		if segIdx < len(s.Segments) && s.Segments[segIdx].EndJob == st.nJobs {
			st.sealSegmentLocked(SegSummaryFromState(s.Segments[segIdx].Agg))
			segIdx++
		}
	}
	for _, ts := range s.Series {
		st.series[ts.JobID] = ts
	}
	for _, e := range s.Staged {
		st.staged[e.JobID] = stagedTelemetry{perGPU: e.PerGPU, series: e.Series}
	}
	st.gen++
	st.snap = nil
	return st, nil
}
