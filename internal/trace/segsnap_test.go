package trace_test

// Export/restore tests for the snapshot hooks behind internal/durable. The
// bar mirrors the store's own property tests: a restored store must be
// BIT-identical to the original — every figure column, every index, and the
// per-segment summary digests (which are merge-order sensitive and so must
// survive verbatim, not be re-derived).

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// summaryBits renders a SegSummary's exact state for comparison. %v prints
// floats in shortest-round-trip form, which uniquely identifies the bit
// pattern (including the sign of zero), so a single-ulp drift shows up.
func summaryBits(s trace.SegSummary) string {
	return fmt.Sprintf("%v", s.State())
}

// TestSegSnapshotRoundTrip drives randomized append/seal/compact schedules,
// exports mid-stream and at the end, restores, and requires the restored
// store to match bit-for-bit: snapshot columns, summary digests, geometry.
func TestSegSnapshotRoundTrip(t *testing.T) {
	ds := segJobs(t, 0.05, 23)
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 4; trial++ {
		cfg := trace.SegConfig{
			DurationDays: ds.DurationDays,
			SegmentJobs:  []int{1, 37, 500, 1 << 20}[trial],
			MaxSegments:  []int{0, 4, 0, 2}[trial],
		}
		t.Run(fmt.Sprintf("segment=%d/max=%d", cfg.SegmentJobs, cfg.MaxSegments), func(t *testing.T) {
			st := trace.NewSegStore(cfg)
			for i := range ds.Jobs {
				st.Append(ds.Jobs[i])
				if rng.Intn(997) == 0 {
					st.SealTail()
				}
				if rng.Intn(1997) == 0 {
					st.Compact()
				}
				if ts := ds.Series[ds.Jobs[i].JobID]; ts != nil {
					st.AttachSeries(ts)
				}
			}
			// Park telemetry that never joins, so restore must carry it.
			st.StageTelemetry(1<<40+7, []metrics.MetricSummaries{{}}, nil)

			state := st.ExportState()
			got, err := trace.RestoreSegStore(cfg, state)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != st.Len() || got.Segments() != st.Segments() {
				t.Fatalf("geometry: %d jobs/%d segments, want %d/%d",
					got.Len(), got.Segments(), st.Len(), st.Segments())
			}
			if got.StagedJobs() != st.StagedJobs() {
				t.Fatalf("staged: %d, want %d", got.StagedJobs(), st.StagedJobs())
			}
			if a, b := summaryBits(got.Summary()), summaryBits(st.Summary()); a != b {
				t.Fatalf("summary digests differ:\n got %s\nwant %s", a, b)
			}
			wantV, gotV := st.Snapshot(), got.Snapshot()
			if wantV.TailJobs != gotV.TailJobs {
				t.Fatalf("tail: %d, want %d", gotV.TailJobs, wantV.TailJobs)
			}
			compareColumns(t, wantV.Cols, gotV.Cols)

			// The restored store must keep evolving identically: append the
			// same extra jobs to both and re-compare.
			extra := segJobs(t, 0.01, 99)
			for i := range extra.Jobs {
				extra.Jobs[i].JobID += 1 << 41
				st.Append(extra.Jobs[i])
				got.Append(extra.Jobs[i])
			}
			if a, b := summaryBits(got.Summary()), summaryBits(st.Summary()); a != b {
				t.Fatalf("summary digests diverge after post-restore appends")
			}
			compareColumns(t, st.Snapshot().Cols, got.Snapshot().Cols)
		})
	}
}

// TestSegSnapshotJoinAfterRestore pins that staged telemetry survives a
// restore and still joins the scheduler-side record that arrives later.
func TestSegSnapshotJoinAfterRestore(t *testing.T) {
	st := trace.NewSegStore(trace.SegConfig{DurationDays: 1})
	per := []metrics.MetricSummaries{{metrics.SMUtil: {Min: 1, Mean: 2, Max: 3}}}
	st.StageTelemetry(42, per, &trace.TimeSeries{JobID: 42, IntervalSec: 1})

	got, err := trace.RestoreSegStore(trace.SegConfig{DurationDays: 1}, st.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	got.Append(trace.JobRecord{JobID: 42, User: 1, NumGPUs: 1, RunSec: 600, LimitSec: 900})
	if got.StagedJobs() != 0 {
		t.Fatalf("staged = %d after join, want 0", got.StagedJobs())
	}
	v := got.Snapshot()
	if len(v.Cols.GPU) != 1 || len(v.Cols.GPU[0].PerGPU) != 1 {
		t.Fatal("restored staged telemetry did not join")
	}
	if v.Cols.GPU[0].GPU[metrics.SMUtil].Mean != 2 {
		t.Fatal("averaged GPU summary not recomputed at post-restore join")
	}
	if v.Cols.Series(42) == nil {
		t.Fatal("staged series not attached at post-restore join")
	}
}

// TestRestoreSegStoreRejectsBadBoundaries pins the validation: boundaries
// must be strictly increasing and within the job count.
func TestRestoreSegStoreRejectsBadBoundaries(t *testing.T) {
	ds := segJobs(t, 0.01, 3)
	st := trace.NewSegStore(trace.SegConfig{DurationDays: 1, SegmentJobs: 10})
	for i := range ds.Jobs {
		st.Append(ds.Jobs[i])
	}
	for name, mut := range map[string]func(*trace.SegStoreState){
		"beyond-jobs":    func(s *trace.SegStoreState) { s.Segments[0].EndJob = len(s.Jobs) + 1 },
		"non-increasing": func(s *trace.SegStoreState) { s.Segments[1].EndJob = s.Segments[0].EndJob },
		"zero":           func(s *trace.SegStoreState) { s.Segments[0].EndJob = 0 },
	} {
		state := st.ExportState()
		if len(state.Segments) < 2 {
			t.Fatalf("want ≥2 segments, got %d", len(state.Segments))
		}
		mut(state)
		if _, err := trace.RestoreSegStore(trace.SegConfig{DurationDays: 1}, state); err == nil {
			t.Errorf("%s: restore accepted corrupt boundary", name)
		}
	}
}

// TestSegSnapshotTotalGPUHoursBits spot-checks the most drift-prone scalar:
// the append-order GPU-hours fold must come back bit-identical.
func TestSegSnapshotTotalGPUHoursBits(t *testing.T) {
	ds := segJobs(t, 0.03, 11)
	st := trace.NewSegStore(trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 100})
	for i := range ds.Jobs {
		st.Append(ds.Jobs[i])
	}
	got, err := trace.RestoreSegStore(trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 100}, st.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	a := st.Snapshot().Cols.TotalGPUHours
	b := got.Snapshot().Cols.TotalGPUHours
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("TotalGPUHours bits differ: %x vs %x", math.Float64bits(a), math.Float64bits(b))
	}
}
