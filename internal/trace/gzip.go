package trace

import (
	"compress/gzip"
	"fmt"
	"io"
)

// WriteCSVGZ writes the gzip-compressed job table — paper-scale traces
// compress roughly 4× and production sites archive months of them.
func (d *Dataset) WriteCSVGZ(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if err := d.WriteCSV(zw); err != nil {
		zw.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("trace: closing gzip stream: %w", err)
	}
	return nil
}

// ReadCSVGZ reads a gzip-compressed job table.
func ReadCSVGZ(r io.Reader, durationDays float64) (*Dataset, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: opening gzip stream: %w", err)
	}
	defer zr.Close()
	return ReadCSV(zr, durationDays)
}

// WriteJSONGZ writes the gzip-compressed full dataset.
func (d *Dataset) WriteJSONGZ(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if err := d.WriteJSON(zw); err != nil {
		zw.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("trace: closing gzip stream: %w", err)
	}
	return nil
}

// ReadJSONGZ reads a gzip-compressed full dataset.
func ReadJSONGZ(r io.Reader) (*Dataset, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: opening gzip stream: %w", err)
	}
	defer zr.Close()
	return ReadJSON(zr)
}
