package trace

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/metrics"
)

// TestCodecsRejectNonFiniteIdentically pins the CSV/JSON agreement on
// non-finite values: a dataset carrying NaN or ±Inf in any float field is
// rejected by BOTH writers with the same record-level error, and a CSV file
// carrying such a value is rejected on read. Before this, WriteCSV emitted
// the value (FormatFloat renders NaN/±Inf, ParseFloat reads them back) while
// WriteJSON failed — the same dataset round-tripped through one codec and
// not the other.
func TestCodecsRejectNonFiniteIdentically(t *testing.T) {
	mutations := map[string]func(*JobRecord){
		"nan-summary-mean": func(j *JobRecord) { j.GPU[metrics.SMUtil].Mean = math.NaN() },
		"inf-summary-max":  func(j *JobRecord) { j.GPU[metrics.Power].Max = math.Inf(1) },
		"neginf-per-gpu":   func(j *JobRecord) { j.PerGPU[0][metrics.MemUtil].Min = math.Inf(-1) },
		"nan-submit":       func(j *JobRecord) { j.SubmitSec = math.NaN() },
		"inf-limit":        func(j *JobRecord) { j.LimitSec = math.Inf(1) },
		"nan-hostcpu":      func(j *JobRecord) { j.HostCPU.Mean = math.NaN() },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			d := NewDataset(1)
			j := gpuJob(1, 0, 600, 1)
			mutate(&j)
			d.Add(j)
			var csvBuf, jsonBuf bytes.Buffer
			csvErr := d.WriteCSV(&csvBuf)
			jsonErr := d.WriteJSON(&jsonBuf)
			if csvErr == nil || jsonErr == nil {
				t.Fatalf("non-finite dataset accepted: csv err=%v, json err=%v", csvErr, jsonErr)
			}
			if csvErr.Error() != jsonErr.Error() {
				t.Fatalf("codecs diverge on rejection:\ncsv:  %v\njson: %v", csvErr, jsonErr)
			}
		})
	}
}

// TestReadCSVRejectsNonFiniteLiterals ensures every spelling ParseFloat
// accepts for non-finite values is refused by the reader.
func TestReadCSVRejectsNonFiniteLiterals(t *testing.T) {
	d := NewDataset(1)
	j := gpuJob(1, 0, 600, 1)
	j.PerGPU[0][metrics.SMUtil].Max = 31337 // sentinel to replace
	j.FinalizeGPUSummary()
	d.Add(j)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"NaN", "nan", "+Inf", "-Inf", "Inf", "Infinity"} {
		corrupted := bytes.Replace(buf.Bytes(), []byte("31337"), []byte(bad), 1)
		if _, err := ReadCSV(bytes.NewReader(corrupted), 1); err == nil {
			t.Fatalf("CSV with %q in a summary column was accepted", bad)
		}
	}
}
