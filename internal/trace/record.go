// Package trace defines the dataset the whole study revolves around: the
// per-job records produced by joining Slurm accounting logs with nvidia-smi
// GPU summaries on job ID (the paper's §II methodology), the detailed
// time-series subset, and codecs for moving datasets through files.
package trace

import (
	"fmt"
	"math"
	"time"

	"repro/internal/metrics"
)

// Interface is the submission interface through which a job entered the
// system. Supercloud exposes dedicated interfaces for map-reduce, batch and
// interactive jobs; everything else (mostly deep-learning training) arrives
// via the general Slurm interface and is recorded as "other" (paper Fig. 5).
type Interface int

// The four submission interfaces.
const (
	MapReduce Interface = iota
	Batch
	Interactive
	Other

	NumInterfaces
)

// String returns the interface name used in figure labels.
func (i Interface) String() string {
	switch i {
	case MapReduce:
		return "map-reduce"
	case Batch:
		return "batch"
	case Interactive:
		return "interactive"
	case Other:
		return "other"
	default:
		return fmt.Sprintf("interface(%d)", int(i))
	}
}

// ExitStatus is the terminal disposition of a job, the observable the
// life-cycle classifier works from.
type ExitStatus int

// Terminal dispositions.
const (
	// ExitSuccess is a zero exit code: the job ran to completion.
	ExitSuccess ExitStatus = iota
	// ExitCancelled is a user-initiated termination before completion
	// (scancel), typical of abandoned hyper-parameter explorations.
	ExitCancelled
	// ExitTimeout is a wall-clock limit kill.
	ExitTimeout
	// ExitFailed is a non-zero exit code (crash, assertion, OOM).
	ExitFailed

	// NumExitStatuses bounds the enum so table-driven consumers (the
	// life-cycle classifier) can prove exhaustiveness over every
	// (ExitStatus × Interface) pair.
	NumExitStatuses
)

// String returns the status name.
func (e ExitStatus) String() string {
	switch e {
	case ExitSuccess:
		return "success"
	case ExitCancelled:
		return "cancelled"
	case ExitTimeout:
		return "timeout"
	case ExitFailed:
		return "failed"
	default:
		return fmt.Sprintf("exit(%d)", int(e))
	}
}

// Category is the algorithm-development life-cycle stage of a job, the
// paper's §VI contribution: mature (finalized code), exploratory
// (hyper-parameter search, terminated by the user), development (code under
// debug), and IDE (long interactive design sessions).
type Category int

// Life-cycle categories.
const (
	Mature Category = iota
	Exploratory
	Development
	IDE

	NumCategories
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case Mature:
		return "mature"
	case Exploratory:
		return "exploratory"
	case Development:
		return "development"
	case IDE:
		return "ide"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// JobRecord is one row of the joined dataset. Durations are stored as
// float64 seconds because that is what every downstream estimator consumes;
// helper methods convert to time.Duration for display.
type JobRecord struct {
	JobID int64
	User  int // anonymized user index

	Interface Interface
	Exit      ExitStatus

	SubmitSec float64 // submission time, seconds since trace start
	WaitSec   float64 // queue wait
	RunSec    float64 // execution time
	LimitSec  float64 // requested wall-clock limit (timeout)

	NumGPUs     int
	CoresPerGPU int     // host-CPU slice per GPU (0 for CPU jobs)
	Cores       int     // total cores for CPU-only jobs
	MemGB       float64 // host memory request

	// PerGPU holds the nvidia-smi digest of each allocated GPU; nil for CPU
	// jobs. GPU holds their average, the paper's per-job number.
	PerGPU []metrics.MetricSummaries
	GPU    metrics.MetricSummaries

	// HostCPU is the 10-second-cadence host-CPU utilization digest (§II's
	// CPU time series), as a percentage of the job's requested cores.
	HostCPU metrics.SummaryRecord

	// Requeues counts how many times failures killed and requeued the job
	// before it completed; zero in a fault-free trace.
	Requeues int
	// FailureLossSec is the wall time destroyed by those failed attempts
	// (after any checkpoint credit).
	FailureLossSec float64
}

// IsGPU reports whether the job requested any GPU.
func (j *JobRecord) IsGPU() bool { return j.NumGPUs > 0 }

// ServiceSec returns wait + run, the denominator of Fig. 3b.
func (j *JobRecord) ServiceSec() float64 { return j.WaitSec + j.RunSec }

// WaitFraction returns the queue wait as a percentage of service time
// (Fig. 3b's y-axis), or 0 for a zero-service job.
func (j *JobRecord) WaitFraction() float64 {
	s := j.ServiceSec()
	if s <= 0 {
		return 0
	}
	return j.WaitSec / s * 100
}

// GPUHours returns NumGPUs × run time in hours, the accounting unit of
// Figs. 13b, 15b and 17b.
func (j *JobRecord) GPUHours() float64 {
	return float64(j.NumGPUs) * j.RunSec / 3600
}

// RunDuration returns the run time as a time.Duration.
func (j *JobRecord) RunDuration() time.Duration {
	return time.Duration(j.RunSec * float64(time.Second))
}

// FinalizeGPUSummary recomputes the averaged GPU digest from PerGPU,
// following the paper's stated methodology for multi-GPU jobs.
func (j *JobRecord) FinalizeGPUSummary() {
	j.GPU = metrics.Averaged(j.PerGPU)
}

// Validate reports structural problems with the record. Non-finite values
// (NaN, ±Inf) are rejected in every float field: JSON cannot encode them, so
// permitting them on the CSV path would make the two codecs diverge on the
// same dataset. Note that NaN slips through the negative checks below (every
// comparison with NaN is false), so finiteness must be tested explicitly.
func (j *JobRecord) Validate() error {
	switch {
	case j.JobID < 0:
		return fmt.Errorf("trace: job %d: negative id", j.JobID)
	case j.User < 0:
		return fmt.Errorf("trace: job %d: negative user", j.JobID)
	case j.RunSec < 0 || j.WaitSec < 0 || j.SubmitSec < 0:
		return fmt.Errorf("trace: job %d: negative time fields", j.JobID)
	case j.NumGPUs < 0:
		return fmt.Errorf("trace: job %d: negative GPU count", j.JobID)
	case j.NumGPUs > 0 && len(j.PerGPU) > 0 && len(j.PerGPU) != j.NumGPUs:
		return fmt.Errorf("trace: job %d: %d GPU summaries for %d GPUs", j.JobID, len(j.PerGPU), j.NumGPUs)
	case j.Requeues < 0:
		return fmt.Errorf("trace: job %d: negative requeue count", j.JobID)
	case j.FailureLossSec < 0:
		return fmt.Errorf("trace: job %d: negative failure loss", j.JobID)
	}
	if !finite(j.SubmitSec, j.WaitSec, j.RunSec, j.LimitSec, j.MemGB, j.FailureLossSec) {
		return fmt.Errorf("trace: job %d: non-finite scheduler field", j.JobID)
	}
	if !summaryFinite(j.HostCPU) {
		return fmt.Errorf("trace: job %d: non-finite host-CPU summary", j.JobID)
	}
	for m := range j.GPU {
		if !summaryFinite(j.GPU[m]) {
			return fmt.Errorf("trace: job %d: non-finite GPU summary for %s", j.JobID, metrics.Metric(m))
		}
	}
	for g, ms := range j.PerGPU {
		for m := range ms {
			if !summaryFinite(ms[m]) {
				return fmt.Errorf("trace: job %d: non-finite summary for GPU %d, %s", j.JobID, g, metrics.Metric(m))
			}
		}
	}
	return nil
}

// finite reports whether every value is a finite float.
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// summaryFinite reports whether a min/mean/max digest is fully finite.
func summaryFinite(s metrics.SummaryRecord) bool { return finite(s.Min, s.Mean, s.Max) }

// TimeSeries is the detailed 100 ms-class log of one job: one sample stream
// per allocated GPU. The paper collected this for a 2,149-job subset.
type TimeSeries struct {
	JobID       int64
	IntervalSec float64            // sampling cadence
	PerGPU      [][]metrics.Sample // one stream per GPU
}

// Duration returns the covered time span in seconds.
func (ts *TimeSeries) Duration() float64 {
	if len(ts.PerGPU) == 0 || len(ts.PerGPU[0]) == 0 {
		return 0
	}
	return float64(len(ts.PerGPU[0])) * ts.IntervalSec
}
