package trace

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/metrics"
)

func gpuJob(id int64, user int, runSec float64, gpus int) JobRecord {
	j := JobRecord{
		JobID: id, User: user, Interface: Other, Exit: ExitSuccess,
		SubmitSec: 100, WaitSec: 5, RunSec: runSec, LimitSec: 43200,
		NumGPUs: gpus, CoresPerGPU: 4, MemGB: 64,
	}
	for g := 0; g < gpus; g++ {
		var s metrics.MetricSummaries
		s[metrics.SMUtil] = metrics.SummaryRecord{Min: 0, Mean: 20, Max: 90}
		s[metrics.Power] = metrics.SummaryRecord{Min: 25, Mean: 45, Max: 90}
		j.PerGPU = append(j.PerGPU, s)
	}
	j.FinalizeGPUSummary()
	return j
}

func cpuJob(id int64, user int, runSec float64) JobRecord {
	return JobRecord{
		JobID: id, User: user, Interface: Batch, Exit: ExitSuccess,
		SubmitSec: 50, WaitSec: 120, RunSec: runSec, Cores: 40, MemGB: 384,
	}
}

func TestRecordDerivedQuantities(t *testing.T) {
	j := gpuJob(1, 0, 3600, 2)
	if !j.IsGPU() {
		t.Fatal("gpu job not recognized")
	}
	if j.ServiceSec() != 3605 {
		t.Fatalf("service = %v", j.ServiceSec())
	}
	if wf := j.WaitFraction(); math.Abs(wf-5.0/3605*100) > 1e-9 {
		t.Fatalf("wait fraction = %v", wf)
	}
	if gh := j.GPUHours(); gh != 2 {
		t.Fatalf("GPU hours = %v, want 2", gh)
	}
	if j.RunDuration().Hours() != 1 {
		t.Fatalf("run duration = %v", j.RunDuration())
	}
	zero := JobRecord{}
	if zero.WaitFraction() != 0 {
		t.Fatal("zero-service wait fraction not 0")
	}
}

func TestRecordValidate(t *testing.T) {
	good := gpuJob(1, 0, 60, 2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.PerGPU = bad.PerGPU[:1]
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched per-GPU count accepted")
	}
	neg := good
	neg.RunSec = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative run time accepted")
	}
}

func TestDatasetFiltering(t *testing.T) {
	d := NewDataset(125)
	d.Add(gpuJob(1, 0, 3600, 1))
	d.Add(gpuJob(2, 0, 10, 1)) // filtered: < 30 s
	d.Add(gpuJob(3, 1, 600, 4))
	d.Add(cpuJob(4, 2, 480))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := len(d.GPUJobs()); n != 2 {
		t.Fatalf("GPU jobs = %d, want 2 (30 s filter)", n)
	}
	if n := len(d.CPUJobs()); n != 1 {
		t.Fatalf("CPU jobs = %d", n)
	}
	if n := len(d.MultiGPUJobs()); n != 1 {
		t.Fatalf("multi-GPU jobs = %d", n)
	}
	if users := d.Users(); len(users) != 3 {
		t.Fatalf("users = %v", users)
	}
	if by := d.ByUser(); len(by[0]) != 1 || len(by[1]) != 1 {
		t.Fatalf("ByUser = %v", by)
	}
	if gh := d.TotalGPUHours(); math.Abs(gh-(1+4.0/6)) > 1e-9 {
		t.Fatalf("total GPU hours = %v", gh)
	}
}

func TestDatasetDuplicateIDs(t *testing.T) {
	d := NewDataset(1)
	d.Add(gpuJob(1, 0, 60, 1))
	d.Add(gpuJob(1, 0, 60, 1))
	if err := d.Validate(); err == nil {
		t.Fatal("duplicate ids accepted")
	}
}

func TestSeriesLinkage(t *testing.T) {
	d := NewDataset(1)
	d.Add(gpuJob(1, 0, 60, 1))
	d.AttachSeries(&TimeSeries{JobID: 1, IntervalSec: 1, PerGPU: [][]metrics.Sample{make([]metrics.Sample, 60)}})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if dur := d.Series[1].Duration(); dur != 60 {
		t.Fatalf("series duration = %v", dur)
	}
	d.AttachSeries(&TimeSeries{JobID: 99, IntervalSec: 1})
	if err := d.Validate(); err == nil {
		t.Fatal("orphan series accepted")
	}
}

func TestExtractors(t *testing.T) {
	d := NewDataset(1)
	d.Add(gpuJob(1, 0, 600, 1))
	d.Add(gpuJob(2, 0, 1200, 1))
	jobs := d.GPUJobs()
	means := MeanValues(jobs, metrics.SMUtil)
	if len(means) != 2 || means[0] != 20 {
		t.Fatalf("means = %v", means)
	}
	maxes := MaxValues(jobs, metrics.Power)
	if maxes[0] != 90 {
		t.Fatalf("maxes = %v", maxes)
	}
	mins := RunMinutes(jobs)
	if mins[0] != 10 || mins[1] != 20 {
		t.Fatalf("run minutes = %v", mins)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := NewDataset(125)
	d.Add(gpuJob(1, 3, 3600, 2))
	d.Add(cpuJob(2, 4, 480))
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 125)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 2 {
		t.Fatalf("round trip jobs = %d", len(back.Jobs))
	}
	got := back.Jobs[0]
	want := d.Jobs[0]
	if got.JobID != want.JobID || got.User != want.User || got.RunSec != want.RunSec ||
		got.Interface != want.Interface || got.Exit != want.Exit || got.NumGPUs != want.NumGPUs {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.GPU[metrics.SMUtil] != want.GPU[metrics.SMUtil] {
		t.Fatalf("summary mismatch: %+v vs %+v", got.GPU[metrics.SMUtil], want.GPU[metrics.SMUtil])
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("not,a,header\n"), 1); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := NewDataset(125)
	d.Add(gpuJob(1, 3, 3600, 2))
	d.AttachSeries(&TimeSeries{
		JobID:       1,
		IntervalSec: 1,
		PerGPU:      [][]metrics.Sample{{{TimeSec: 0}, {TimeSec: 1}}},
	})
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != 1 || len(back.Jobs[0].PerGPU) != 2 {
		t.Fatalf("json round trip lost per-GPU data: %+v", back.Jobs)
	}
	if back.Series[1] == nil || len(back.Series[1].PerGPU[0]) != 2 {
		t.Fatal("json round trip lost series")
	}
	if back.DurationDays != 125 {
		t.Fatalf("duration = %v", back.DurationDays)
	}
}

func TestEnumStrings(t *testing.T) {
	if MapReduce.String() != "map-reduce" || Other.String() != "other" {
		t.Fatal("interface strings wrong")
	}
	if ExitSuccess.String() != "success" || ExitTimeout.String() != "timeout" {
		t.Fatal("exit strings wrong")
	}
	if Mature.String() != "mature" || IDE.String() != "ide" {
		t.Fatal("category strings wrong")
	}
	if Interface(77).String() == "" || ExitStatus(77).String() == "" || Category(77).String() == "" {
		t.Fatal("unknown enum strings empty")
	}
}
