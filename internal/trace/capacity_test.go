package trace_test

// Regression test for the -max-jobs admission TOCTOU: the original simcloudd
// checked Len()+len(batch) against the bound and then appended in a second
// store call, so two concurrent batches could both pass the check and
// jointly overshoot. AppendDatasetMax makes reserve-then-append one critical
// section; under heavy contention the stored-job count must never exceed the
// bound and every rejection must be a *CapacityError.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
)

func TestAppendDatasetMaxConcurrent(t *testing.T) {
	const (
		maxJobs   = 1000
		writers   = 8
		batchSize = 60
		batches   = 10 // 8*10*60 = 4800 offered >> 1000 allowed
	)
	st := trace.NewSegStore(trace.SegConfig{DurationDays: 1, SegmentJobs: 128})
	var accepted, rejected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				ds := trace.NewDataset(1)
				for k := 0; k < batchSize; k++ {
					ds.Add(trace.JobRecord{
						JobID:  int64(w)<<32 | int64(b)<<16 | int64(k),
						User:   w,
						Cores:  1,
						RunSec: 60,
					})
				}
				err := st.AppendDatasetMax(ds, maxJobs)
				if err == nil {
					accepted.Add(batchSize)
					continue
				}
				var ce *trace.CapacityError
				if !errors.As(err, &ce) {
					t.Errorf("rejection is %T (%v), want *CapacityError", err, err)
					return
				}
				rejected.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := st.Len(); got > maxJobs {
		t.Fatalf("store holds %d jobs, bound is %d — admission raced", got, maxJobs)
	}
	if got := st.Len(); int64(got) != accepted.Load() {
		t.Fatalf("store holds %d jobs but %d were acked", got, accepted.Load())
	}
	if rejected.Load() == 0 {
		t.Fatal("no batch was ever rejected; the test did not contend the bound")
	}
	// The bound must be reachable, not just respected: offered load far
	// exceeded it, so admission should have filled most of it.
	if got := st.Len(); got < maxJobs-batchSize {
		t.Fatalf("store holds %d jobs; admission under-filled the %d bound", got, maxJobs)
	}
}
