package trace

import (
	"math"
	"sort"
	"testing"

	"repro/internal/metrics"
)

// columnsFixture builds a small mixed dataset exercising every grouping:
// filtered short jobs, multi-GPU jobs, several users and interfaces, CPU
// jobs, and an attached series.
func columnsFixture() *Dataset {
	d := NewDataset(125)
	j1 := gpuJob(1, 0, 3600, 1)
	j1.Interface = Batch
	d.Add(j1)
	d.Add(gpuJob(2, 0, 10, 1)) // filtered: < 30 s
	j3 := gpuJob(3, 1, 600, 4)
	j3.Interface = Interactive
	j3.WaitSec = 200
	d.Add(j3)
	j4 := gpuJob(4, 1, 1800, 2)
	d.Add(j4)
	d.Add(cpuJob(5, 2, 480))
	d.Add(cpuJob(6, 0, 120))
	d.AttachSeries(&TimeSeries{JobID: 1, IntervalSec: 1, PerGPU: [][]metrics.Sample{make([]metrics.Sample, 60)}})
	d.AttachSeries(&TimeSeries{JobID: 3, IntervalSec: 1, PerGPU: [][]metrics.Sample{make([]metrics.Sample, 60)}})
	return d
}

// TestColumnsMatchRowScans checks every column and grouping index against
// the row-walking Dataset accessors it replaces.
func TestColumnsMatchRowScans(t *testing.T) {
	d := columnsFixture()
	c := d.Columns()

	wantGPU := d.GPUJobs()
	if len(c.GPU) != len(wantGPU) {
		t.Fatalf("GPU population %d, want %d", len(c.GPU), len(wantGPU))
	}
	for i := range wantGPU {
		if c.GPU[i] != wantGPU[i] {
			t.Fatalf("GPU[%d] points at a different record", i)
		}
	}
	if len(c.CPU) != len(d.CPUJobs()) || len(c.Multi) != len(d.MultiGPUJobs()) {
		t.Fatalf("CPU/Multi sizes %d/%d", len(c.CPU), len(c.Multi))
	}

	wantRun := RunMinutes(wantGPU)
	for i, v := range c.RunMin.Values() {
		if v != wantRun[i] {
			t.Fatalf("RunMin[%d] = %v, want %v", i, v, wantRun[i])
		}
	}
	for m := metrics.Metric(0); m < metrics.NumMetrics; m++ {
		wantMean, wantMax := MeanValues(wantGPU, m), MaxValues(wantGPU, m)
		for i := range wantGPU {
			if c.Mean[m].Values()[i] != wantMean[i] || c.Max[m].Values()[i] != wantMax[i] {
				t.Fatalf("metric %v column mismatch at %d", m, i)
			}
		}
	}
	for i, j := range wantGPU {
		if c.WaitSec.Values()[i] != j.WaitSec || c.WaitPct.Values()[i] != j.WaitFraction() ||
			c.GPUHours.Values()[i] != j.GPUHours() || c.NumGPUs[i] != j.NumGPUs ||
			c.HostCPU.Values()[i] != j.HostCPU.Mean {
			t.Fatalf("per-job columns mismatch at %d", i)
		}
	}
	if c.TotalGPUHours != d.TotalGPUHours() {
		t.Fatalf("TotalGPUHours %v, want %v", c.TotalGPUHours, d.TotalGPUHours())
	}

	// Grouping indexes.
	wantUsers := make([]int, 0)
	for u := range d.ByUser() {
		wantUsers = append(wantUsers, u)
	}
	sort.Ints(wantUsers)
	if len(c.Users) != len(wantUsers) {
		t.Fatalf("Users = %v, want %v", c.Users, wantUsers)
	}
	for u, jobs := range d.ByUser() {
		idx := c.ByUser[u]
		if len(idx) != len(jobs) {
			t.Fatalf("ByUser[%d] size %d, want %d", u, len(idx), len(jobs))
		}
		for k, j := range jobs {
			if c.GPU[idx[k]] != j {
				t.Fatalf("ByUser[%d][%d] wrong record", u, k)
			}
		}
	}
	for iface, jobs := range d.ByInterface() {
		idx := c.ByIface[iface]
		if len(idx) != len(jobs) {
			t.Fatalf("ByIface[%v] size %d, want %d", iface, len(idx), len(jobs))
		}
	}

	// Size-class wait columns partition the wait column.
	total := 0
	for s := range c.WaitBySize {
		total += c.WaitBySize[s].N()
	}
	if total != len(c.GPU) {
		t.Fatalf("size-class waits cover %d of %d jobs", total, len(c.GPU))
	}

	// Series order is the sorted key set.
	if len(c.SeriesIDs) != len(d.Series) || !sort.SliceIsSorted(c.SeriesIDs, func(a, b int) bool {
		return c.SeriesIDs[a] < c.SeriesIDs[b]
	}) {
		t.Fatalf("SeriesIDs = %v", c.SeriesIDs)
	}
	for _, id := range c.SeriesIDs {
		if c.Series(id) != d.Series[id] {
			t.Fatalf("Series(%d) mismatch", id)
		}
	}
}

// TestFloatColumnSorted checks the lazily cached sorted view: ascending,
// NaN-free, shared across calls, with the raw order untouched.
func TestFloatColumnSorted(t *testing.T) {
	col := NewFloatColumn([]float64{3, math.NaN(), 1, 2, 1})
	s1 := col.Sorted()
	want := []float64{1, 1, 2, 3}
	if len(s1) != len(want) {
		t.Fatalf("sorted = %v", s1)
	}
	for i := range want {
		if s1[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", s1, want)
		}
	}
	s2 := col.Sorted()
	if &s1[0] != &s2[0] {
		t.Fatal("Sorted re-materialized instead of returning the cache")
	}
	if col.Values()[0] != 3 {
		t.Fatal("Values order disturbed by sorting")
	}
	var nilCol *FloatColumn
	if nilCol.N() != 0 || nilCol.Sorted() != nil || nilCol.Values() != nil {
		t.Fatal("nil column accessors not empty")
	}
}

// TestColumnsMemoInvalidation checks that Dataset.Columns is cached and that
// Add/AttachSeries drop the memo.
func TestColumnsMemoInvalidation(t *testing.T) {
	d := columnsFixture()
	c1 := d.Columns()
	if d.Columns() != c1 {
		t.Fatal("Columns not memoized")
	}
	d.Add(gpuJob(7, 3, 900, 8))
	c2 := d.Columns()
	if c2 == c1 {
		t.Fatal("Add did not invalidate the memo")
	}
	if len(c2.GPU) != len(c1.GPU)+1 {
		t.Fatalf("rebuilt GPU population %d", len(c2.GPU))
	}
	d.AttachSeries(&TimeSeries{JobID: 7, IntervalSec: 1, PerGPU: [][]metrics.Sample{make([]metrics.Sample, 10)}})
	if c3 := d.Columns(); c3 == c2 || len(c3.SeriesIDs) != 3 {
		t.Fatal("AttachSeries did not invalidate the memo")
	}
}

// TestSizeClass pins the §V size-class mapping.
func TestSizeClass(t *testing.T) {
	for _, tc := range []struct{ gpus, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {8, 2}, {9, 3}, {32, 3},
	} {
		if got := SizeClass(tc.gpus); got != tc.want {
			t.Errorf("SizeClass(%d) = %d, want %d", tc.gpus, got, tc.want)
		}
	}
}
