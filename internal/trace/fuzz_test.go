package trace

import (
	"bytes"
	"testing"
)

// FuzzReadCSV: arbitrary bytes must never panic the CSV reader; valid
// round-trips must reproduce their input record count.
func FuzzReadCSV(f *testing.F) {
	d := NewDataset(1)
	d.Add(gpuJob(1, 0, 600, 2))
	d.Add(cpuJob(2, 1, 120))
	var seed bytes.Buffer
	if err := d.WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("job_id,user\n1,2\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadCSV(bytes.NewReader(data), 1)
		if err != nil {
			return
		}
		// Anything accepted must survive re-encoding.
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset failed to re-encode: %v", err)
		}
	})
}

// FuzzReadJSON: arbitrary bytes must never panic the JSON reader.
func FuzzReadJSON(f *testing.F) {
	d := NewDataset(1)
	d.Add(gpuJob(1, 0, 600, 1))
	var seed bytes.Buffer
	if err := d.WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted dataset failed to re-encode: %v", err)
		}
	})
}
