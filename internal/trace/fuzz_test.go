package trace

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
)

// nonFiniteCSVSeed renders a valid dataset to CSV and then smuggles a
// non-finite literal into a metric-summary column — what a hand-edited or
// corrupted trace file can contain, and what FormatFloat happily emitted
// before the writers validated. ParseFloat accepts all of these spellings,
// so only record validation keeps them out of a dataset.
func nonFiniteCSVSeed(f *testing.F, bad string) []byte {
	f.Helper()
	d := NewDataset(1)
	j := gpuJob(1, 0, 600, 1)
	j.PerGPU[0][metrics.SMUtil].Max = 31337 // sentinel to replace
	j.FinalizeGPUSummary()
	d.Add(j)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	return bytes.Replace(buf.Bytes(), []byte("31337"), []byte(bad), 1)
}

// negativeFaultCSVSeed renders a valid dataset to CSV and corrupts one of
// the recovery-telemetry columns (requeues, failure_loss_sec) with a
// negative literal. Both readers must reject it, or the round-trip fixed
// point below breaks when one codec writes what the other refuses.
func negativeFaultCSVSeed(f *testing.F, bad string) []byte {
	f.Helper()
	d := NewDataset(1)
	j := gpuJob(1, 0, 600, 1)
	j.Requeues = 31337 // sentinel to replace
	d.Add(j)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	return bytes.Replace(buf.Bytes(), []byte("31337"), []byte(bad), 1)
}

// FuzzReadCSV: arbitrary bytes must never panic the CSV reader; valid
// round-trips must reproduce their input record count.
func FuzzReadCSV(f *testing.F) {
	d := NewDataset(1)
	d.Add(gpuJob(1, 0, 600, 2))
	d.Add(cpuJob(2, 1, 120))
	var seed bytes.Buffer
	if err := d.WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("job_id,user\n1,2\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadCSV(bytes.NewReader(data), 1)
		if err != nil {
			return
		}
		// Anything accepted must survive re-encoding.
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset failed to re-encode: %v", err)
		}
	})
}

// FuzzDatasetRoundTrip: any dataset the CSV reader accepts must round-trip
// through both codecs as a fixed point — re-reading a re-encoded dataset
// yields byte-identical encodings in CSV and in JSON. This pins the decoders
// and encoders against each other: a field one side writes and the other
// drops, or a value normalized differently on the two paths, breaks the
// fixed point.
func FuzzDatasetRoundTrip(f *testing.F) {
	d := NewDataset(1)
	d.Add(gpuJob(1, 0, 600, 2))
	d.Add(cpuJob(2, 1, 120))
	d.Add(gpuJob(3, 2, 7200, 8))
	var seed bytes.Buffer
	if err := d.WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("job_id,user\n1,2\n"))
	f.Add([]byte(""))
	// Non-finite metric summaries: the CSV parser reads these fine, so the
	// fixed point below only holds if validation rejects them on both the
	// read and the write path (WriteJSON cannot represent them).
	for _, bad := range []string{"NaN", "+Inf", "-Inf", "Infinity"} {
		f.Add(nonFiniteCSVSeed(f, bad))
	}
	// Negative recovery telemetry: Validate must refuse these on both the
	// read and the write path, exactly like the non-finite spellings.
	for _, bad := range []string{"-1", "-3.5"} {
		f.Add(negativeFaultCSVSeed(f, bad))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadCSV(bytes.NewReader(data), 1)
		if err != nil {
			return
		}
		// CSV leg: read(write(ds)) must re-encode to the same bytes.
		var csv1 bytes.Buffer
		if err := ds.WriteCSV(&csv1); err != nil {
			t.Fatalf("accepted dataset failed to encode as CSV: %v", err)
		}
		ds2, err := ReadCSV(bytes.NewReader(csv1.Bytes()), 1)
		if err != nil {
			t.Fatalf("re-reading own CSV encoding failed: %v", err)
		}
		if len(ds2.Jobs) != len(ds.Jobs) {
			t.Fatalf("CSV round trip changed job count: %d -> %d", len(ds.Jobs), len(ds2.Jobs))
		}
		var csv2 bytes.Buffer
		if err := ds2.WriteCSV(&csv2); err != nil {
			t.Fatalf("round-tripped dataset failed to encode as CSV: %v", err)
		}
		if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
			t.Fatalf("CSV encoding is not a fixed point:\nfirst:  %q\nsecond: %q", csv1.Bytes(), csv2.Bytes())
		}
		// JSON leg: the same dataset must survive the other codec too.
		var json1 bytes.Buffer
		if err := ds2.WriteJSON(&json1); err != nil {
			t.Fatalf("accepted dataset failed to encode as JSON: %v", err)
		}
		ds3, err := ReadJSON(bytes.NewReader(json1.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own JSON encoding failed: %v", err)
		}
		if len(ds3.Jobs) != len(ds2.Jobs) {
			t.Fatalf("JSON round trip changed job count: %d -> %d", len(ds2.Jobs), len(ds3.Jobs))
		}
		var json2 bytes.Buffer
		if err := ds3.WriteJSON(&json2); err != nil {
			t.Fatalf("round-tripped dataset failed to encode as JSON: %v", err)
		}
		if !bytes.Equal(json1.Bytes(), json2.Bytes()) {
			t.Fatalf("JSON encoding is not a fixed point:\nfirst:  %q\nsecond: %q", json1.Bytes(), json2.Bytes())
		}
	})
}

// FuzzReadJSON: arbitrary bytes must never panic the JSON reader.
func FuzzReadJSON(f *testing.F) {
	d := NewDataset(1)
	d.Add(gpuJob(1, 0, 600, 1))
	var seed bytes.Buffer
	if err := d.WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted dataset failed to re-encode: %v", err)
		}
	})
}
