package trace

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// noCopy is the standard vet copylocks sentinel: embedding it makes
// `go vet` (and simlint's copylocks pass) flag any by-value copy of the
// enclosing struct. It has Lock/Unlock so the copylocks analyzer treats it
// as a lock type; the methods do nothing.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// Dataset is the joined study dataset: every job record, plus the detailed
// time-series subset keyed by job ID. It corresponds to the paper's "single
// dataset" built by combining Slurm logs and nvidia-smi profiles on job IDs.
// A Dataset must not be copied by value: the columnar memo holds a mutex
// and aliases d.Jobs element pointers, so a copy would race and dangle.
// Pass *Dataset, or build a fresh value via a composite literal sharing
// Jobs/Series. The noCopy field makes go vet and simlint flag violations.
type Dataset struct {
	noCopy noCopy

	Jobs   []JobRecord
	Series map[int64]*TimeSeries
	// DurationDays is the trace's observation window (the paper's is 125).
	DurationDays float64

	colMu sync.Mutex
	cols  *Columns
}

// Columns returns the memoized columnar projection of the dataset, building
// it on first use. Add and AttachSeries invalidate the memo, so the returned
// index always reflects the current contents; mutating Jobs or Series
// directly does not (rebuild by calling BuildColumns, or mutate through the
// methods). Safe for concurrent use.
func (d *Dataset) Columns() *Columns {
	d.colMu.Lock()
	defer d.colMu.Unlock()
	if d.cols == nil {
		d.cols = BuildColumns(d)
	}
	return d.cols
}

// invalidateColumns drops the columnar memo after a mutation.
func (d *Dataset) invalidateColumns() {
	d.colMu.Lock()
	d.cols = nil
	d.colMu.Unlock()
}

// MinGPUJobRunSec is the paper's analysis filter: "jobs running for less
// than 30 seconds are filtered out since no activity is observed".
const MinGPUJobRunSec = 30

// NewDataset creates an empty dataset covering durationDays.
func NewDataset(durationDays float64) *Dataset {
	return &Dataset{Series: make(map[int64]*TimeSeries), DurationDays: durationDays}
}

// Add appends a record.
func (d *Dataset) Add(j JobRecord) {
	d.Jobs = append(d.Jobs, j)
	d.invalidateColumns()
}

// AttachSeries stores the detailed time series of a job.
func (d *Dataset) AttachSeries(ts *TimeSeries) {
	if d.Series == nil {
		d.Series = make(map[int64]*TimeSeries)
	}
	d.Series[ts.JobID] = ts
	d.invalidateColumns()
}

// GPUJobs returns the analysis population: GPU jobs with run time of at
// least MinGPUJobRunSec (47,120 of the paper's 74,820).
func (d *Dataset) GPUJobs() []*JobRecord {
	out := make([]*JobRecord, 0, len(d.Jobs))
	for i := range d.Jobs {
		j := &d.Jobs[i]
		if j.IsGPU() && j.RunSec >= MinGPUJobRunSec {
			out = append(out, j)
		}
	}
	return out
}

// CPUJobs returns jobs that requested no GPU.
func (d *Dataset) CPUJobs() []*JobRecord {
	out := make([]*JobRecord, 0, len(d.Jobs))
	for i := range d.Jobs {
		if !d.Jobs[i].IsGPU() {
			out = append(out, &d.Jobs[i])
		}
	}
	return out
}

// MultiGPUJobs returns GPU jobs (post-filter) using two or more GPUs.
func (d *Dataset) MultiGPUJobs() []*JobRecord {
	var out []*JobRecord
	for _, j := range d.GPUJobs() {
		if j.NumGPUs >= 2 {
			out = append(out, j)
		}
	}
	return out
}

// Users returns the sorted distinct user indices over all jobs.
func (d *Dataset) Users() []int {
	seen := map[int]bool{}
	for i := range d.Jobs {
		seen[d.Jobs[i].User] = true
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// ByUser groups the GPU-job analysis population by user.
func (d *Dataset) ByUser() map[int][]*JobRecord {
	out := map[int][]*JobRecord{}
	for _, j := range d.GPUJobs() {
		out[j.User] = append(out[j.User], j)
	}
	return out
}

// ByInterface groups the GPU-job analysis population by submission
// interface.
func (d *Dataset) ByInterface() map[Interface][]*JobRecord {
	out := map[Interface][]*JobRecord{}
	for _, j := range d.GPUJobs() {
		out[j.Interface] = append(out[j.Interface], j)
	}
	return out
}

// TotalGPUHours sums GPU hours over the analysis population.
func (d *Dataset) TotalGPUHours() float64 {
	var total float64
	for _, j := range d.GPUJobs() {
		total += j.GPUHours()
	}
	return total
}

// Validate checks every record and the series linkage.
func (d *Dataset) Validate() error {
	ids := make(map[int64]bool, len(d.Jobs))
	for i := range d.Jobs {
		j := &d.Jobs[i]
		if err := j.Validate(); err != nil {
			return err
		}
		if ids[j.JobID] {
			return fmt.Errorf("trace: duplicate job id %d", j.JobID)
		}
		ids[j.JobID] = true
	}
	for id := range d.Series {
		if !ids[id] {
			return fmt.Errorf("trace: time series for unknown job %d", id)
		}
	}
	return nil
}

// MeanValues extracts one metric's per-job mean across jobs, the input shape
// of every utilization CDF.
func MeanValues(jobs []*JobRecord, m metrics.Metric) []float64 {
	out := make([]float64, len(jobs))
	for i, j := range jobs {
		out[i] = j.GPU[m].Mean
	}
	return out
}

// MaxValues extracts one metric's per-job max across jobs.
func MaxValues(jobs []*JobRecord, m metrics.Metric) []float64 {
	out := make([]float64, len(jobs))
	for i, j := range jobs {
		out[i] = j.GPU[m].Max
	}
	return out
}

// RunMinutes extracts run times in minutes.
func RunMinutes(jobs []*JobRecord) []float64 {
	out := make([]float64, len(jobs))
	for i, j := range jobs {
		out[i] = j.RunSec / 60
	}
	return out
}
