package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// This file is the streaming counterpart of columns.go: an append-only,
// segment-sharded columnar store. Dataset + BuildColumns serve the batch
// world where the population is frozen before analysis; SegStore serves the
// always-on world where jobs arrive while figures are being answered.
//
// The core idea is that every logical column lives in ONE append-only
// backing array. Sealed segments are immutable [start,end) windows over
// those arrays, each carrying its own lazily cached sorted view and a
// mergeable summary; the mutable tail is just the region past the last
// seal. Because written elements are never mutated and Go's append only
// writes at or past len, a full-slice-expression view vals[:n:n] taken
// under the store lock is immutable forever — a Snapshot is therefore O(1)
// per column, and the Columns it returns is byte-identical to what
// BuildColumns would produce over the same job sequence, for ANY seal or
// compaction schedule:
//
//   - dataset-order vectors are the same physical elements, so every
//     sequential (Welford, sum) figure scan folds the identical float
//     sequence;
//   - sorted views are k-way merges of the per-segment sorted runs (plus a
//     sort of the small tail), and merging ascending runs of a multiset
//     yields the same ascending array as sorting the whole — without
//     re-sorting sealed data ever again;
//   - order-independent structures (per-user/interface indexes) are built
//     incrementally exactly as BuildColumns builds them.
//
// Per-segment SegSummary aggregates (stats.Streaming moments) answer live
// summary queries in O(segments); they merge in segment-index order, so
// they are deterministic for a given seal/compaction schedule but — unlike
// the figures — not invariant across schedules (float merge order differs).

// Column indices into SegStore's float backing arrays. The layout mirrors
// Columns' FloatColumn fields one-to-one.
const (
	sfRunMin = iota
	sfWaitSec
	sfWaitPct
	sfGPUHours
	sfHostCPU
	sfCPURunMin
	sfCPUWaitSec
	sfCPUWaitPct
	sfCPUHostCPU
	sfWaitSize0 // + size class; NumSizeClasses columns
)

// sfMean0/sfMax0 are the bases of the per-metric mean/max column blocks.
const (
	sfMean0  = sfWaitSize0 + NumSizeClasses
	sfMax0   = sfMean0 + int(metrics.NumMetrics)
	numSegFs = sfMax0 + int(metrics.NumMetrics)
)

// jobChunkSize is the slab size of the job arena. Chunks are allocated at
// full capacity and never grow, so *JobRecord pointers handed to column
// views stay valid across appends (a plain growing slice would move them).
const jobChunkSize = 1024

// DefaultSegmentJobs is the seal threshold when SegConfig.SegmentJobs is 0.
const DefaultSegmentJobs = 4096

// SegConfig parameterizes a SegStore.
type SegConfig struct {
	// DurationDays is the observation window recorded on snapshots.
	DurationDays float64
	// SegmentJobs seals the tail into an immutable segment every time it
	// reaches this many jobs; 0 means DefaultSegmentJobs, negative disables
	// automatic sealing (SealTail only).
	SegmentJobs int
	// MaxSegments, when positive, bounds the sealed-segment count: when a
	// seal pushes past it, adjacent segments are pairwise compacted
	// (halving the count), keeping query-time merge fan-in and segment
	// metadata O(MaxSegments).
	MaxSegments int
}

// SegSummary is one segment's (or the whole store's) mergeable digest:
// counts plus streaming moments of the headline columns. It merges via
// stats.Streaming's parallel-variance merge; merge in segment-index order
// for deterministic results.
type SegSummary struct {
	Jobs     int // all appended jobs, before any filter
	GPUJobs  int // analysis population (GPU, RunSec >= MinGPUJobRunSec)
	CPUJobs  int
	MultiGPU int

	GPUHours stats.Streaming // per-job GPU hours over the GPU population
	WaitSec  stats.Streaming
	RunMin   stats.Streaming
	// MeanUtil[m] aggregates the per-job mean of GPU metric m.
	MeanUtil [metrics.NumMetrics]stats.Streaming
}

// add folds one analysis-population GPU job (resp. CPU job) into the digest.
func (s *SegSummary) addGPU(j *JobRecord, hours float64) {
	s.GPUJobs++
	if j.NumGPUs >= 2 {
		s.MultiGPU++
	}
	s.GPUHours.Add(hours)
	s.WaitSec.Add(j.WaitSec)
	s.RunMin.Add(j.RunSec / 60)
	for m := metrics.Metric(0); m < metrics.NumMetrics; m++ {
		s.MeanUtil[m].Add(j.GPU[m].Mean)
	}
}

// Merge folds o after s. Call in segment-index order.
func (s *SegSummary) Merge(o *SegSummary) {
	s.Jobs += o.Jobs
	s.GPUJobs += o.GPUJobs
	s.CPUJobs += o.CPUJobs
	s.MultiGPU += o.MultiGPU
	s.GPUHours.Merge(&o.GPUHours)
	s.WaitSec.Merge(&o.WaitSec)
	s.RunMin.Merge(&o.RunMin)
	for m := range s.MeanUtil {
		s.MeanUtil[m].Merge(&o.MeanUtil[m])
	}
}

// segment is one immutable sealed window of the store. Its FloatColumns
// wrap full-slice-expression views of the backing arrays, so their lazily
// cached sorted runs are shared by every snapshot and survive compaction
// (a compacted segment merges its children's runs instead of re-sorting).
type segment struct {
	startJob, endJob int // [start,end) in appended-job order
	off              [numSegFs]int
	cols             [numSegFs]*FloatColumn
	agg              SegSummary
}

// SegStore is the append-only segmented columnar store. The zero value is
// not usable; construct with NewSegStore. All methods are safe for
// concurrent use; reads returned by Snapshot are immutable and may be
// consumed without further locking, concurrently with appends.
type SegStore struct {
	noCopy noCopy

	mu  sync.Mutex
	cfg SegConfig

	// Append-only backing arrays (the whole-store columns). Elements below
	// the current length are never rewritten. All guarded by mu, like
	// every mutable field below: unlocked helpers carry the *Locked name
	// suffix and run only with mu held (enforced by simlint's lockguard).
	f       [numSegFs][]float64 // guarded by mu
	numGPUs []int               // guarded by mu
	gpu     []*JobRecord        // guarded by mu
	multi   []*JobRecord        // guarded by mu
	cpu     []*JobRecord        // guarded by mu

	byUser  map[int][]int32        // guarded by mu
	byIface [NumInterfaces][]int32 // guarded by mu

	// totalGPUHours accumulates in append order — the exact float sequence
	// BuildColumns folds, so snapshots report bit-identical totals.
	totalGPUHours float64

	series map[int64]*TimeSeries     // guarded by mu
	staged map[int64]stagedTelemetry // guarded by mu

	chunks [][]JobRecord // guarded by mu
	nJobs  int           // guarded by mu

	sealed  []*segment    // guarded by mu
	tailOff [numSegFs]int // guarded by mu
	tailJob int           // guarded by mu
	tailAgg SegSummary    // guarded by mu

	// sealedMerge[c] caches the merge of every sealed segment's sorted run
	// for column c, as a lazily-sorted view over the sealed prefix of the
	// backing array. It is replaced only when the sealed set's CONTENT
	// changes (a seal); compaction reshapes the segments but not the
	// multiset, so the cache survives it. Queries therefore pay one tail
	// sort plus a single two-way merge per column, not a k-way merge —
	// the merge cascade that keeps interleaved append+query O(tail)-ish.
	sealedMerge [numSegFs]*FloatColumn // guarded by mu

	gen  uint64   // guarded by mu
	snap *SegView // guarded by mu
}

// stagedTelemetry is monitoring-epilog output parked until the matching
// scheduler-side record arrives (the §II join on job ID).
type stagedTelemetry struct {
	perGPU []metrics.MetricSummaries
	series *TimeSeries
}

// SegView is an immutable snapshot of the store: a fully functional Columns
// over everything appended before the snapshot, plus the segment geometry
// behind it. Safe for concurrent use and never invalidated — a view taken
// before an append simply does not see it.
type SegView struct {
	// Cols is the stitched columnar projection; every Columns consumer
	// (core figures, engine samples) works on it unchanged.
	Cols *Columns
	// NJobs is the appended-job count covered by the view.
	NJobs int
	// Segments is the sealed-segment count at snapshot time; TailJobs is
	// the not-yet-sealed remainder.
	Segments int
	TailJobs int
	// Gen increases with every mutation; equal Gens mean identical views.
	Gen uint64

	sortTasks []func()
}

// NewSegStore creates an empty store.
func NewSegStore(cfg SegConfig) *SegStore {
	if cfg.SegmentJobs == 0 {
		cfg.SegmentJobs = DefaultSegmentJobs
	}
	return &SegStore{
		cfg:    cfg,
		byUser: make(map[int][]int32),
		series: make(map[int64]*TimeSeries),
		staged: make(map[int64]stagedTelemetry),
	}
}

// Append adds one job record, the streaming counterpart of Dataset.Add: the
// record is projected into every column immediately, so the cost is O(1)
// amortized and no later query ever rebuilds. If GPU telemetry for the job
// was staged via StageTelemetry, it is joined here (PerGPU adopted, series
// attached) before projection.
func (st *SegStore) Append(j JobRecord) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.appendLocked(j)
	st.maybeSealLocked()
}

// AppendBatch adds records in order, sealing as thresholds are crossed.
func (st *SegStore) AppendBatch(jobs []JobRecord) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range jobs {
		st.appendLocked(jobs[i])
		st.maybeSealLocked()
	}
}

// AppendDataset streams a whole dataset's jobs and series into the store.
func (st *SegStore) AppendDataset(ds *Dataset) {
	// Unbounded append cannot fail; the error is structurally impossible.
	if err := st.AppendDatasetMax(ds, 0); err != nil {
		panic(err)
	}
}

// CapacityError reports an ingest batch rejected because it would push the
// store past a job bound. The admission check and the append happen under
// one lock acquisition, so concurrent batches cannot both pass the check
// and jointly overshoot the bound.
type CapacityError struct {
	Stored, Batch, Max int
}

func (e *CapacityError) Error() string {
	return fmt.Sprintf("trace: store at %d jobs, batch of %d exceeds bound %d",
		e.Stored, e.Batch, e.Max)
}

// AppendDatasetMax is AppendDataset with an atomic admission bound: when
// maxJobs is positive and the batch would push the stored-job count past it,
// nothing is appended and a *CapacityError is returned. Reserve-then-append
// is a single critical section — the check cannot race another batch's
// append (the -max-jobs TOCTOU simcloudd shipped with).
func (st *SegStore) AppendDatasetMax(ds *Dataset, maxJobs int) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if maxJobs > 0 && st.nJobs+len(ds.Jobs) > maxJobs {
		return &CapacityError{Stored: st.nJobs, Batch: len(ds.Jobs), Max: maxJobs}
	}
	for i := range ds.Jobs {
		st.appendLocked(ds.Jobs[i])
		st.maybeSealLocked()
	}
	for _, id := range sortedSeriesKeys(ds.Series) {
		st.series[id] = ds.Series[id]
	}
	st.gen++
	st.snap = nil
	return nil
}

// AttachSeries stores the detailed time series of a job.
func (st *SegStore) AttachSeries(ts *TimeSeries) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.series[ts.JobID] = ts
	st.gen++
	st.snap = nil
}

// StageTelemetry parks monitoring-epilog output (per-GPU digests and the
// optional retained series) for a job whose scheduler-side record has not
// arrived yet. The next Append of that job ID joins it: a record with no
// PerGPU adopts the staged digests (recomputing the averaged GPU summary),
// and the staged series is attached. This is how the monitoring pipeline
// streams §II joins into the store as epilogs fire.
func (st *SegStore) StageTelemetry(jobID int64, perGPU []metrics.MetricSummaries, ts *TimeSeries) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.staged[jobID] = stagedTelemetry{perGPU: perGPU, series: ts}
}

// StagedJobs returns the number of telemetry records awaiting their join.
func (st *SegStore) StagedJobs() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.staged)
}

// appendLocked projects one record into the columns. It mirrors the
// BuildColumns loop body exactly so snapshots are bit-identical to the
// batch path.
func (st *SegStore) appendLocked(j JobRecord) {
	if tel, ok := st.staged[j.JobID]; ok {
		delete(st.staged, j.JobID)
		if j.IsGPU() && j.PerGPU == nil && tel.perGPU != nil {
			j.PerGPU = tel.perGPU
			j.FinalizeGPUSummary()
		}
		if tel.series != nil {
			st.series[j.JobID] = tel.series
		}
	}

	// Arena-allocate the record so the pointer survives future appends.
	if n := len(st.chunks); n == 0 || len(st.chunks[n-1]) == cap(st.chunks[n-1]) {
		st.chunks = append(st.chunks, make([]JobRecord, 0, jobChunkSize))
	}
	chunk := &st.chunks[len(st.chunks)-1]
	*chunk = append(*chunk, j)
	jp := &(*chunk)[len(*chunk)-1]

	st.nJobs++
	st.gen++
	st.snap = nil
	st.tailAgg.Jobs++

	if !jp.IsGPU() {
		st.cpu = append(st.cpu, jp)
		st.f[sfCPURunMin] = append(st.f[sfCPURunMin], jp.RunSec/60)
		st.f[sfCPUWaitSec] = append(st.f[sfCPUWaitSec], jp.WaitSec)
		st.f[sfCPUWaitPct] = append(st.f[sfCPUWaitPct], jp.WaitFraction())
		st.f[sfCPUHostCPU] = append(st.f[sfCPUHostCPU], jp.HostCPU.Mean)
		st.tailAgg.CPUJobs++
		return
	}
	if jp.RunSec < MinGPUJobRunSec {
		return
	}
	idx := int32(len(st.gpu))
	st.gpu = append(st.gpu, jp)
	st.numGPUs = append(st.numGPUs, jp.NumGPUs)
	st.f[sfRunMin] = append(st.f[sfRunMin], jp.RunSec/60)
	st.f[sfWaitSec] = append(st.f[sfWaitSec], jp.WaitSec)
	st.f[sfWaitPct] = append(st.f[sfWaitPct], jp.WaitFraction())
	h := jp.GPUHours()
	st.f[sfGPUHours] = append(st.f[sfGPUHours], h)
	st.totalGPUHours += h
	st.f[sfHostCPU] = append(st.f[sfHostCPU], jp.HostCPU.Mean)
	for m := metrics.Metric(0); m < metrics.NumMetrics; m++ {
		st.f[sfMean0+int(m)] = append(st.f[sfMean0+int(m)], jp.GPU[m].Mean)
		st.f[sfMax0+int(m)] = append(st.f[sfMax0+int(m)], jp.GPU[m].Max)
	}
	st.f[sfWaitSize0+SizeClass(jp.NumGPUs)] = append(st.f[sfWaitSize0+SizeClass(jp.NumGPUs)], jp.WaitSec)
	if jp.NumGPUs >= 2 {
		st.multi = append(st.multi, jp)
	}
	st.byUser[jp.User] = append(st.byUser[jp.User], idx)
	if jp.Interface >= 0 && jp.Interface < NumInterfaces {
		st.byIface[jp.Interface] = append(st.byIface[jp.Interface], idx)
	}
	st.tailAgg.addGPU(jp, h)
}

// maybeSealLocked seals when the tail crosses the configured size.
func (st *SegStore) maybeSealLocked() {
	if st.cfg.SegmentJobs > 0 && st.nJobs-st.tailJob >= st.cfg.SegmentJobs {
		st.sealLocked()
	}
}

// SealTail seals the current tail into an immutable segment (a no-op for an
// empty tail). Sealing never changes query results — it only freezes the
// region so its sorted runs are cached once and reused by every later
// snapshot instead of being re-sorted.
func (st *SegStore) SealTail() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sealLocked()
}

func (st *SegStore) sealLocked() {
	if st.nJobs == st.tailJob {
		return
	}
	st.sealSegmentLocked(st.tailAgg)
	if st.cfg.MaxSegments > 0 && len(st.sealed) > st.cfg.MaxSegments {
		st.compactLocked()
	}
}

// sealSegmentLocked freezes the tail into a segment carrying agg as its
// digest. The live path passes the accumulated tail digest; snapshot restore
// passes the recorded one, which may be a Merge-shaped aggregate from a
// compaction the original store performed (re-folding the jobs would differ
// in final ulps — the recorded floats are the ground truth).
func (st *SegStore) sealSegmentLocked(agg SegSummary) {
	seg := &segment{startJob: st.tailJob, endJob: st.nJobs, agg: agg}
	for c := 0; c < numSegFs; c++ {
		seg.off[c] = st.tailOff[c]
		end := len(st.f[c])
		seg.cols[c] = NewFloatColumn(st.f[c][st.tailOff[c]:end:end])
		st.tailOff[c] = end
	}
	st.tailJob = st.nJobs
	st.tailAgg = SegSummary{}
	st.sealed = append(st.sealed, seg)
	// Refresh the merge cascade: fold the new segment's run into the
	// previous sealed-prefix merge (one two-way merge on first use), rather
	// than discarding the cascade and re-merging every segment.
	for c := 0; c < numSegFs; c++ {
		prev, next := st.sealedMerge[c], seg.cols[c]
		end := st.tailOff[c]
		vals := st.f[c][:end:end]
		if prev == nil {
			st.sealedMerge[c] = next
		} else {
			st.sealedMerge[c] = newMergeSortedColumn(vals, func() [][]float64 {
				return [][]float64{prev.Sorted(), next.Sorted()}
			})
		}
	}
}

// Compact pairwise-merges adjacent sealed segments, halving the segment
// count: merge fan-in and per-segment metadata stay bounded while sealed
// sorted runs are merged, not re-sorted. Figure results are unaffected
// (the property test pins this); SegSummary moments change merge
// association and so may differ in final ulps from an unsealed run.
func (st *SegStore) Compact() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.compactLocked()
}

func (st *SegStore) compactLocked() {
	if len(st.sealed) < 2 {
		return
	}
	merged := make([]*segment, 0, (len(st.sealed)+1)/2)
	for i := 0; i+1 < len(st.sealed); i += 2 {
		merged = append(merged, st.mergeSegmentsLocked(st.sealed[i], st.sealed[i+1]))
	}
	if len(st.sealed)%2 == 1 {
		merged = append(merged, st.sealed[len(st.sealed)-1])
	}
	st.sealed = merged
	st.gen++
	st.snap = nil
}

// mergeSegmentsLocked combines two adjacent segments into one. Column
// views are re-cut from the shared backing arrays (the windows are
// contiguous); the sorted view stays lazy — it merges the children's runs
// on first use, so sealed data is sorted at most once no matter how many
// compactions roll over it, and never if nobody asks. Called with mu held
// (it reads the backing arrays), hence the Locked suffix.
func (st *SegStore) mergeSegmentsLocked(a, b *segment) *segment {
	out := &segment{startJob: a.startJob, endJob: b.endJob, agg: a.agg}
	out.agg.Merge(&b.agg)
	for c := 0; c < numSegFs; c++ {
		end := b.off[c] + b.cols[c].N()
		vals := st.f[c][a.off[c]:end:end]
		out.off[c] = a.off[c]
		ac, bc := a.cols[c], b.cols[c]
		out.cols[c] = newMergeSortedColumn(vals, func() [][]float64 {
			return [][]float64{ac.Sorted(), bc.Sorted()}
		})
	}
	return out
}

// Summary merges the per-segment digests (in segment-index order) with the
// tail digest: the O(segments) live answer for dashboards. Deterministic
// for a given seal/compaction schedule.
func (st *SegStore) Summary() SegSummary {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out SegSummary
	for _, seg := range st.sealed {
		out.Merge(&seg.agg)
	}
	out.Merge(&st.tailAgg)
	return out
}

// Len returns the number of appended jobs.
func (st *SegStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nJobs
}

// Segments returns the sealed-segment count.
func (st *SegStore) Segments() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sealed)
}

// TailJobs returns the number of jobs appended since the last seal — the
// mutable tail the backpressure bound watches. O(1); no view is built.
func (st *SegStore) TailJobs() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n := len(st.sealed); n > 0 {
		return st.nJobs - st.sealed[n-1].endJob
	}
	return st.nJobs
}

// Snapshot returns an immutable view of everything appended so far. The
// snapshot is memoized per generation: queries between appends share one
// view (and therefore one set of merged sorted runs). Building a fresh view
// is O(users + series + columns) — no job data is copied, no sort runs.
func (st *SegStore) Snapshot() *SegView {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.snap != nil {
		return st.snap
	}
	c := &Columns{
		ByUser:        make(map[int][]int32, len(st.byUser)),
		DurationDays:  st.cfg.DurationDays,
		TotalGPUHours: st.totalGPUHours,
	}
	v := &SegView{
		Cols:     c,
		NJobs:    st.nJobs,
		Segments: len(st.sealed),
		TailJobs: st.nJobs - st.tailJob,
		Gen:      st.gen,
	}

	// Full-slice-expression views: immutable even as the store appends.
	c.GPU = st.gpu[:len(st.gpu):len(st.gpu)]
	c.Multi = st.multi[:len(st.multi):len(st.multi)]
	c.CPU = st.cpu[:len(st.cpu):len(st.cpu)]
	c.NumGPUs = st.numGPUs[:len(st.numGPUs):len(st.numGPUs)]

	segs := st.sealed[:len(st.sealed):len(st.sealed)]
	col := func(id int) *FloatColumn {
		n := len(st.f[id])
		vals := st.f[id][:n:n]
		tail := st.f[id][st.tailOff[id]:n:n]
		sealed := st.sealedMerge[id]
		if sealed == nil {
			// Nothing sealed: the snapshot column is a plain sort-on-demand
			// view of the tail (== the whole store).
			return NewFloatColumn(vals)
		}
		fc := newMergeSortedColumn(vals, func() [][]float64 {
			if len(tail) == 0 {
				return [][]float64{sealed.Sorted()}
			}
			return [][]float64{sealed.Sorted(), sortDropNaN(tail, nil)}
		})
		for _, seg := range segs {
			seg := seg
			v.sortTasks = append(v.sortTasks, func() { seg.cols[id].Sorted() })
		}
		return fc
	}
	c.RunMin = col(sfRunMin)
	c.WaitSec = col(sfWaitSec)
	c.WaitPct = col(sfWaitPct)
	c.GPUHours = col(sfGPUHours)
	c.HostCPU = col(sfHostCPU)
	c.CPURunMin = col(sfCPURunMin)
	c.CPUWaitSec = col(sfCPUWaitSec)
	c.CPUWaitPct = col(sfCPUWaitPct)
	c.CPUHostCPU = col(sfCPUHostCPU)
	for s := 0; s < NumSizeClasses; s++ {
		c.WaitBySize[s] = col(sfWaitSize0 + s)
	}
	for m := 0; m < int(metrics.NumMetrics); m++ {
		c.Mean[m] = col(sfMean0 + m)
		c.Max[m] = col(sfMax0 + m)
	}

	c.Users = make([]int, 0, len(st.byUser))
	for u, idx := range st.byUser {
		c.Users = append(c.Users, u)
		c.ByUser[u] = idx[:len(idx):len(idx)]
	}
	sort.Ints(c.Users)
	for i := range st.byIface {
		c.ByIface[i] = st.byIface[i][:len(st.byIface[i]):len(st.byIface[i])]
	}

	c.SeriesIDs = sortedSeriesKeys(st.series)
	c.series = make(map[int64]*TimeSeries, len(st.series))
	for _, id := range c.SeriesIDs {
		c.series[id] = st.series[id]
	}

	st.snap = v
	return v
}

// SortTasks returns one closure per (sealed segment, column) pair that
// materializes that segment's cached sorted run. They are independent and
// idempotent, so a caller with a worker pool can fan them out before the
// snapshot's merged views are first consumed; running none is equally
// correct, just serial. The merge itself always folds in segment order.
func (v *SegView) SortTasks() []func() { return v.sortTasks }

// Validate checks every appended record and the series linkage, the
// streaming counterpart of Dataset.Validate.
func (st *SegStore) Validate() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make(map[int64]bool, st.nJobs)
	for _, chunk := range st.chunks {
		for i := range chunk {
			j := &chunk[i]
			if err := j.Validate(); err != nil {
				return err
			}
			if ids[j.JobID] {
				return fmt.Errorf("trace: duplicate job id %d", j.JobID)
			}
			ids[j.JobID] = true
		}
	}
	for id := range st.series {
		if !ids[id] {
			return fmt.Errorf("trace: time series for unknown job %d", id)
		}
	}
	return nil
}

// sortDropNaN returns vals ascending with NaNs dropped — via sortFn when
// one is supplied, else by sorting a fresh copy (the FloatColumn.Sorted
// contract).
func sortDropNaN(vals []float64, sortFn func() []float64) []float64 {
	if sortFn != nil {
		return sortFn()
	}
	s := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	sort.Float64s(s)
	return s
}

// mergeSortedRuns k-way merges ascending runs into one ascending slice by
// rounds of pairwise merges in run order — O(n log k) with sequential
// memory traffic, and the output is the same ascending multiset a full
// sort would produce. sizeHint presizes the result (NaN-free runs may sum
// below it).
func mergeSortedRuns(runs [][]float64, sizeHint int) []float64 {
	live := make([][]float64, 0, len(runs))
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return []float64{}
	case 1:
		return live[0]
	}
	for len(live) > 1 {
		next := live[:0]
		for i := 0; i+1 < len(live); i += 2 {
			next = append(next, mergeTwo(live[i], live[i+1], sizeHint))
		}
		if len(live)%2 == 1 {
			next = append(next, live[len(live)-1])
		}
		live = next
	}
	return live[0]
}

// mergeTwo merges two ascending runs. capHint bounds the allocation for the
// final round; intermediate rounds allocate exactly len(a)+len(b).
func mergeTwo(a, b []float64, capHint int) []float64 {
	n := len(a) + len(b)
	if capHint < n {
		capHint = n
	}
	out := make([]float64, 0, n)
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		if a[i] <= b[k] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[k])
			k++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[k:]...)
	return out
}

// sortedSeriesKeys returns m's keys ascending.
func sortedSeriesKeys(m map[int64]*TimeSeries) []int64 {
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}
