package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/metrics"
)

// csvHeader is the column layout of the CSV codec: scheduler fields first
// (the Slurm log side of the join), then the averaged GPU digest
// (the nvidia-smi side), min/mean/max per metric.
func csvHeader() []string {
	h := []string{
		"job_id", "user", "interface", "exit",
		"submit_sec", "wait_sec", "run_sec", "limit_sec",
		"num_gpus", "cores_per_gpu", "cores", "mem_gb",
	}
	for m := metrics.Metric(0); m < metrics.NumMetrics; m++ {
		h = append(h, m.String()+"_min", m.String()+"_mean", m.String()+"_max")
	}
	h = append(h, "hostcpu_min", "hostcpu_mean", "hostcpu_max")
	h = append(h, "requeues", "failure_loss_sec")
	return h
}

// WriteCSV writes the job table (not the time-series subset) to w. Per-GPU
// summaries are not representable in a flat table; use WriteJSON to round-
// trip them. The dataset is validated first, so both codecs reject exactly
// the same datasets — without this, the CSV formatter would happily emit the
// NaN/±Inf values the JSON encoder cannot represent.
func (d *Dataset) WriteCSV(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader()); err != nil {
		return fmt.Errorf("trace: writing csv header: %w", err)
	}
	row := make([]string, 0, 17+3*int(metrics.NumMetrics))
	for i := range d.Jobs {
		j := &d.Jobs[i]
		row = row[:0]
		row = append(row,
			strconv.FormatInt(j.JobID, 10),
			strconv.Itoa(j.User),
			strconv.Itoa(int(j.Interface)),
			strconv.Itoa(int(j.Exit)),
			fmtF(j.SubmitSec), fmtF(j.WaitSec), fmtF(j.RunSec), fmtF(j.LimitSec),
			strconv.Itoa(j.NumGPUs),
			strconv.Itoa(j.CoresPerGPU),
			strconv.Itoa(j.Cores),
			fmtF(j.MemGB),
		)
		for m := metrics.Metric(0); m < metrics.NumMetrics; m++ {
			row = append(row, fmtF(j.GPU[m].Min), fmtF(j.GPU[m].Mean), fmtF(j.GPU[m].Max))
		}
		row = append(row, fmtF(j.HostCPU.Min), fmtF(j.HostCPU.Mean), fmtF(j.HostCPU.Max))
		row = append(row, strconv.Itoa(j.Requeues), fmtF(j.FailureLossSec))
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing job %d: %w", j.JobID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a job table written by WriteCSV into a new dataset with
// the given observation window.
func ReadCSV(r io.Reader, durationDays float64) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading csv header: %w", err)
	}
	want := csvHeader()
	if len(header) != len(want) {
		return nil, fmt.Errorf("trace: csv has %d columns, want %d", len(header), len(want))
	}
	d := NewDataset(durationDays)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		j, err := parseCSVRow(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		d.Add(j)
	}
	// Dataset-level checks (duplicate ids, series linkage) to match ReadJSON;
	// per-row validation above already covered the records.
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func parseCSVRow(rec []string) (JobRecord, error) {
	var j JobRecord
	var err error
	geti := func(s string) int {
		if err != nil {
			return 0
		}
		var v int
		v, err = strconv.Atoi(s)
		return v
	}
	getf := func(s string) float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = strconv.ParseFloat(s, 64)
		return v
	}
	j.JobID = int64(geti(rec[0]))
	j.User = geti(rec[1])
	j.Interface = Interface(geti(rec[2]))
	j.Exit = ExitStatus(geti(rec[3]))
	j.SubmitSec = getf(rec[4])
	j.WaitSec = getf(rec[5])
	j.RunSec = getf(rec[6])
	j.LimitSec = getf(rec[7])
	j.NumGPUs = geti(rec[8])
	j.CoresPerGPU = geti(rec[9])
	j.Cores = geti(rec[10])
	j.MemGB = getf(rec[11])
	col := 12
	for m := metrics.Metric(0); m < metrics.NumMetrics; m++ {
		j.GPU[m] = metrics.SummaryRecord{
			Min:  getf(rec[col]),
			Mean: getf(rec[col+1]),
			Max:  getf(rec[col+2]),
		}
		col += 3
	}
	j.HostCPU = metrics.SummaryRecord{Min: getf(rec[col]), Mean: getf(rec[col+1]), Max: getf(rec[col+2])}
	col += 3
	j.Requeues = geti(rec[col])
	j.FailureLossSec = getf(rec[col+1])
	if err != nil {
		return j, err
	}
	return j, j.Validate()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// jsonDataset is the JSON wire form, carrying the full record including
// per-GPU summaries and the time-series subset.
type jsonDataset struct {
	DurationDays float64       `json:"duration_days"`
	Jobs         []JobRecord   `json:"jobs"`
	Series       []*TimeSeries `json:"series,omitempty"`
}

// WriteJSON writes the complete dataset, including per-GPU summaries and
// time series, to w. Validation mirrors WriteCSV: a dataset one codec
// accepts, both accept — and a non-finite value fails with a record-level
// error here rather than an opaque one from the JSON encoder. The series
// array is emitted in ascending job-id order: Series is a map, and writing
// it in iteration order made two encodings of the same dataset differ
// byte-for-byte run to run (simlint's maporder analyzer caught this).
func (d *Dataset) WriteJSON(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	wire := jsonDataset{DurationDays: d.DurationDays, Jobs: d.Jobs}
	if len(d.Series) > 0 {
		ids := make([]int64, 0, len(d.Series))
		for id := range d.Series {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		wire.Series = make([]*TimeSeries, 0, len(ids))
		for _, id := range ids {
			wire.Series = append(wire.Series, d.Series[id])
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(wire); err != nil {
		return fmt.Errorf("trace: encoding dataset: %w", err)
	}
	return nil
}

// ReadJSON parses a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var wire jsonDataset
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("trace: decoding dataset: %w", err)
	}
	d := NewDataset(wire.DurationDays)
	d.Jobs = wire.Jobs
	for _, ts := range wire.Series {
		d.AttachSeries(ts)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
