package trace_test

// Property tests for the segmented store. The central invariant is the
// ISSUE 8 acceptance bar: a SegStore snapshot must be BIT-identical to
// BuildColumns over the same job sequence — same dataset-order float
// vectors, same sorted views, same grouping indexes, same accumulated
// totals — for ANY seal/compaction schedule. The tests compare float
// payloads through math.Float64bits so an exact-zero-sign or ulp drift
// fails loudly rather than slipping under an epsilon.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// segJobs generates the shared job sequence (plus series) for the tests.
func segJobs(t testing.TB, scale float64, seed uint64) *trace.Dataset {
	t.Helper()
	cfg := workload.ScaledConfig(scale)
	cfg.Seed = seed
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g.BuildDataset(g.GenerateSpecs())
}

// bitsEqual reports exact bit equality of two float slices (NaN == NaN).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// compareColumn fails unless want and got agree bit-for-bit in both dataset
// order and sorted view.
func compareColumn(t *testing.T, name string, want, got *trace.FloatColumn) {
	t.Helper()
	if !bitsEqual(want.Values(), got.Values()) {
		t.Errorf("%s: dataset-order values differ (n=%d vs %d)", name, want.N(), got.N())
		return
	}
	if !bitsEqual(want.Sorted(), got.Sorted()) {
		t.Errorf("%s: sorted views differ", name)
	}
}

// compareColumns fails unless got (a SegStore snapshot) matches want (a
// from-scratch BuildColumns) bit-for-bit across every figure input.
func compareColumns(t *testing.T, want, got *trace.Columns) {
	t.Helper()
	if len(want.GPU) != len(got.GPU) || len(want.Multi) != len(got.Multi) || len(want.CPU) != len(got.CPU) {
		t.Fatalf("population sizes differ: GPU %d/%d Multi %d/%d CPU %d/%d",
			len(want.GPU), len(got.GPU), len(want.Multi), len(got.Multi), len(want.CPU), len(got.CPU))
	}
	for i := range want.GPU {
		// JobRecord has slice fields, so compare the scalar identity plus
		// the rendered record.
		if want.GPU[i].JobID != got.GPU[i].JobID {
			t.Fatalf("GPU[%d]: job %d vs %d", i, want.GPU[i].JobID, got.GPU[i].JobID)
		}
		if fmt.Sprintf("%v", *want.GPU[i]) != fmt.Sprintf("%v", *got.GPU[i]) {
			t.Fatalf("GPU[%d] (job %d): record contents differ", i, want.GPU[i].JobID)
		}
	}
	compareColumn(t, "RunMin", want.RunMin, got.RunMin)
	compareColumn(t, "WaitSec", want.WaitSec, got.WaitSec)
	compareColumn(t, "WaitPct", want.WaitPct, got.WaitPct)
	compareColumn(t, "GPUHours", want.GPUHours, got.GPUHours)
	compareColumn(t, "HostCPU", want.HostCPU, got.HostCPU)
	compareColumn(t, "CPURunMin", want.CPURunMin, got.CPURunMin)
	compareColumn(t, "CPUWaitSec", want.CPUWaitSec, got.CPUWaitSec)
	compareColumn(t, "CPUWaitPct", want.CPUWaitPct, got.CPUWaitPct)
	compareColumn(t, "CPUHostCPU", want.CPUHostCPU, got.CPUHostCPU)
	for m := 0; m < int(metrics.NumMetrics); m++ {
		compareColumn(t, fmt.Sprintf("Mean[%d]", m), want.Mean[m], got.Mean[m])
		compareColumn(t, fmt.Sprintf("Max[%d]", m), want.Max[m], got.Max[m])
	}
	for s := 0; s < trace.NumSizeClasses; s++ {
		compareColumn(t, fmt.Sprintf("WaitBySize[%d]", s), want.WaitBySize[s], got.WaitBySize[s])
	}
	if fmt.Sprintf("%v", want.NumGPUs) != fmt.Sprintf("%v", got.NumGPUs) {
		t.Errorf("NumGPUs differ")
	}
	if fmt.Sprintf("%v", want.Users) != fmt.Sprintf("%v", got.Users) {
		t.Errorf("Users differ: %v vs %v", want.Users, got.Users)
	}
	if fmt.Sprintf("%v", want.ByUser) != fmt.Sprintf("%v", got.ByUser) {
		t.Errorf("ByUser index differs")
	}
	if fmt.Sprintf("%v", want.ByIface) != fmt.Sprintf("%v", got.ByIface) {
		t.Errorf("ByIface index differs")
	}
	if fmt.Sprintf("%v", want.SeriesIDs) != fmt.Sprintf("%v", got.SeriesIDs) {
		t.Errorf("SeriesIDs differ")
	}
	for _, id := range want.SeriesIDs {
		if want.Series(id) != got.Series(id) {
			t.Errorf("Series(%d) differs", id)
		}
	}
	if math.Float64bits(want.TotalGPUHours) != math.Float64bits(got.TotalGPUHours) {
		t.Errorf("TotalGPUHours: %x vs %x bits", math.Float64bits(want.TotalGPUHours), math.Float64bits(got.TotalGPUHours))
	}
	if want.DurationDays != got.DurationDays {
		t.Errorf("DurationDays: %v vs %v", want.DurationDays, got.DurationDays)
	}
}

// TestSegStoreSnapshotMatchesBuildColumns is the deterministic spine:
// several fixed segment sizes, full dataset appended, snapshot vs
// BuildColumns.
func TestSegStoreSnapshotMatchesBuildColumns(t *testing.T) {
	ds := segJobs(t, 0.08, 17)
	for _, segJobsN := range []int{1, 7, 64, 1000, 1 << 20} {
		t.Run(fmt.Sprintf("segment=%d", segJobsN), func(t *testing.T) {
			st := trace.NewSegStore(trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: segJobsN})
			st.AppendDataset(ds)
			compareColumns(t, trace.BuildColumns(ds), st.Snapshot().Cols)
		})
	}
}

// TestSegStoreRandomSchedules is the property test proper: randomized
// interleavings of append / seal / compact / snapshot, with snapshots taken
// at arbitrary prefixes compared against BuildColumns over the same prefix.
// Earlier snapshots are re-checked at the end to prove immutability under
// later appends and compactions.
func TestSegStoreRandomSchedules(t *testing.T) {
	ds := segJobs(t, 0.05, 23)
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			cfg := trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: -1}
			if rng.Intn(2) == 0 {
				cfg.SegmentJobs = 1 + rng.Intn(200)
			}
			if rng.Intn(2) == 0 {
				cfg.MaxSegments = 1 + rng.Intn(6)
			}
			st := trace.NewSegStore(cfg)
			type taken struct {
				view  *trace.SegView
				nJobs int
			}
			var views []taken
			i := 0
			for i < len(ds.Jobs) {
				switch rng.Intn(10) {
				case 0:
					st.SealTail()
				case 1:
					st.Compact()
				case 2:
					n := st.Len()
					views = append(views, taken{st.Snapshot(), n})
				default:
					batch := 1 + rng.Intn(97)
					if i+batch > len(ds.Jobs) {
						batch = len(ds.Jobs) - i
					}
					st.AppendBatch(ds.Jobs[i : i+batch])
					i += batch
				}
			}
			for _, id := range sortedKeys(ds.Series) {
				st.AttachSeries(ds.Series[id])
			}
			views = append(views, taken{st.Snapshot(), st.Len()})
			// One more destructive round after the final snapshot: earlier
			// views must not see it.
			st.SealTail()
			st.Compact()

			for vi, v := range views {
				prefix := &trace.Dataset{Jobs: ds.Jobs[:v.nJobs], DurationDays: ds.DurationDays}
				if v.nJobs == len(ds.Jobs) {
					prefix.Series = ds.Series
				}
				t.Run(fmt.Sprintf("view=%d/jobs=%d", vi, v.nJobs), func(t *testing.T) {
					compareColumns(t, trace.BuildColumns(prefix), v.view.Cols)
				})
			}
		})
	}
}

func sortedKeys(m map[int64]*trace.TimeSeries) []int64 {
	out := make([]int64, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestSegStoreSortTasksParallel exercises the worker-fanned sort path: when
// per-segment sorted runs are materialized concurrently (any order, any
// worker count), the merged view must still be bit-identical.
func TestSegStoreSortTasksParallel(t *testing.T) {
	ds := segJobs(t, 0.05, 29)
	want := trace.BuildColumns(ds)
	for _, workers := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			st := trace.NewSegStore(trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 111})
			st.AppendDataset(ds)
			v := st.Snapshot()
			tasks := v.SortTasks()
			ch := make(chan func())
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for fn := range ch {
						fn()
					}
				}()
			}
			for _, fn := range tasks {
				ch <- fn
			}
			close(ch)
			wg.Wait()
			compareColumns(t, want, v.Cols)
		})
	}
}

// TestSegStoreSummary checks the O(segments) digest against the population
// ground truth. The moments merge in segment order (Chan et al.), so means
// are compared to the exact population mean within float tolerance — the
// digest is documented as schedule-deterministic, not schedule-invariant.
func TestSegStoreSummary(t *testing.T) {
	ds := segJobs(t, 0.05, 31)
	st := trace.NewSegStore(trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 100, MaxSegments: 4})
	st.AppendDataset(ds)
	cols := trace.BuildColumns(ds)
	sum := st.Summary()
	if sum.Jobs != len(ds.Jobs) {
		t.Errorf("Jobs: %d want %d", sum.Jobs, len(ds.Jobs))
	}
	if sum.GPUJobs != len(cols.GPU) {
		t.Errorf("GPUJobs: %d want %d", sum.GPUJobs, len(cols.GPU))
	}
	if sum.CPUJobs != len(cols.CPU) {
		t.Errorf("CPUJobs: %d want %d", sum.CPUJobs, len(cols.CPU))
	}
	if sum.MultiGPU != len(cols.Multi) {
		t.Errorf("MultiGPU: %d want %d", sum.MultiGPU, len(cols.Multi))
	}
	if sum.GPUHours.N() != len(cols.GPU) {
		t.Errorf("GPUHours.N: %d want %d", sum.GPUHours.N(), len(cols.GPU))
	}
	var exact float64
	for _, h := range cols.GPUHours.Values() {
		exact += h
	}
	if got := sum.GPUHours.Sum(); math.Abs(got-exact) > 1e-6*math.Abs(exact) {
		t.Errorf("GPUHours.Sum: %v want ~%v", got, exact)
	}
	if got, want := sum.WaitSec.Mean(), meanOf(cols.WaitSec.Values()); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("WaitSec.Mean: %v want ~%v", got, want)
	}
}

func meanOf(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// TestSegStoreStageTelemetry checks the monitoring join: telemetry staged
// before the scheduler record arrives is adopted at Append, and the result
// matches a record that carried its telemetry from the start.
func TestSegStoreStageTelemetry(t *testing.T) {
	ds := segJobs(t, 0.02, 37)
	want := trace.BuildColumns(ds)

	st := trace.NewSegStore(trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 50})
	for i := range ds.Jobs {
		j := ds.Jobs[i]
		if j.IsGPU() && j.PerGPU != nil {
			st.StageTelemetry(j.JobID, j.PerGPU, ds.Series[j.JobID])
			j.PerGPU = nil // the scheduler-side record arrives bare
			j.GPU = metrics.MetricSummaries{}
		}
		st.Append(j)
	}
	if n := st.StagedJobs(); n != 0 {
		t.Fatalf("%d staged telemetry records never joined", n)
	}
	got := st.Snapshot().Cols
	// The joined store re-derives GPU summaries from PerGPU; compare the
	// mean columns bit-for-bit (FinalizeGPUSummary is the shared code path).
	for m := 0; m < int(metrics.NumMetrics); m++ {
		compareColumn(t, fmt.Sprintf("joined Mean[%d]", m), want.Mean[m], got.Mean[m])
	}
	if fmt.Sprintf("%v", want.SeriesIDs) != fmt.Sprintf("%v", got.SeriesIDs) {
		t.Errorf("SeriesIDs differ after join: %v vs %v", want.SeriesIDs, got.SeriesIDs)
	}
}

// TestSegStoreConcurrentAppendQuery is the race-stream scenario: writers
// appending while readers snapshot, query figures inputs, and force sorted
// materialization. Run under -race this pins the snapshot immutability
// contract; without -race it still checks monotonic visibility.
func TestSegStoreConcurrentAppendQuery(t *testing.T) {
	ds := segJobs(t, 0.05, 41)
	st := trace.NewSegStore(trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 64, MaxSegments: 8})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range ds.Jobs {
			st.Append(ds.Jobs[i])
			if ts := ds.Series[ds.Jobs[i].JobID]; ts != nil {
				st.AttachSeries(ts)
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				v := st.Snapshot()
				if v.NJobs < last {
					t.Errorf("snapshot shrank: %d after %d", v.NJobs, last)
					return
				}
				last = v.NJobs
				// Touch both views of a few columns, forcing merges.
				_ = v.Cols.RunMin.Sorted()
				_ = v.Cols.WaitSec.Values()
				_ = v.Cols.GPUHours.Sorted()
				_ = st.Summary()
				if v.NJobs == len(ds.Jobs) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	compareColumns(t, trace.BuildColumns(ds), st.Snapshot().Cols)
}
