package trace

import (
	"math"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// FloatColumn is one typed column of the analysis dataset: the values in
// dataset order plus a lazily materialized, cached sorted view. Quantiles,
// ECDFs and box statistics all consume sorted data; sharing one sorted copy
// per column is what lets ~18 analyses run without re-sorting the same
// numbers (the pre-columnar Characterize sorted some columns four times).
// The zero value is an empty column; FloatColumn must not be copied after
// first use (it embeds a sync.Once).
type FloatColumn struct {
	vals []float64

	once   sync.Once
	sorted []float64

	// runsFn, when set, produces the ascending NaN-free sorted RUNS whose
	// union is the column's multiset — the segmented store injects the
	// cached sealed-prefix run plus the sorted tail here, so a snapshot
	// never re-sorts sealed data. Sorted() merges the runs on first use;
	// Stats() answers quantile/fraction queries by selection across them
	// without ever materializing the merge (the live-query hot path).
	// Guarded by its own Once so both accessors share one materialization.
	runsOnce sync.Once
	runs     [][]float64
	runsFn   func() [][]float64
}

// NewFloatColumn wraps vals (adopted, not copied) as a column.
func NewFloatColumn(vals []float64) *FloatColumn { return &FloatColumn{vals: vals} }

// newMergeSortedColumn wraps vals (adopted, not copied) as a column whose
// sorted view is the merge of the runs produced by runsFn on first use, in
// place of the default sort. Used by SegStore snapshots to stitch
// per-segment sorted runs; runsFn must return ascending NaN-free runs whose
// union is exactly the multiset the default path would produce.
func newMergeSortedColumn(vals []float64, runsFn func() [][]float64) *FloatColumn {
	return &FloatColumn{vals: vals, runsFn: runsFn}
}

// sortedRuns materializes (once) the column's sorted-run decomposition, or
// nil for a plain column.
func (c *FloatColumn) sortedRuns() [][]float64 {
	c.runsOnce.Do(func() {
		if c.runsFn != nil {
			c.runs = c.runsFn()
			c.runsFn = nil // free the closure chain
		}
	})
	return c.runs
}

// Values returns the column in dataset order. Callers must not mutate it.
func (c *FloatColumn) Values() []float64 {
	if c == nil {
		return nil
	}
	return c.vals
}

// N returns the number of values (including NaNs, matching len of Values).
func (c *FloatColumn) N() int {
	if c == nil {
		return 0
	}
	return len(c.vals)
}

// Sorted returns the cached ascending sorted view of the column with NaNs
// dropped — the same multiset an ECDF over Values would hold. The first call
// sorts a copy; later calls (from any goroutine) return the same slice.
// Callers must not mutate it.
func (c *FloatColumn) Sorted() []float64 {
	if c == nil {
		return nil
	}
	c.once.Do(func() {
		if runs := c.sortedRuns(); runs != nil {
			n := 0
			for _, r := range runs {
				n += len(r)
			}
			c.sorted = mergeSortedRuns(runs, n)
			return
		}
		s := make([]float64, 0, len(c.vals))
		for _, v := range c.vals {
			if !math.IsNaN(v) {
				s = append(s, v)
			}
		}
		sort.Float64s(s)
		c.sorted = s
	})
	return c.sorted
}

// Stats returns an order-statistics view of the column: quantiles, threshold
// fractions, and CDF vertices, each bit-identical to computing the same
// statistic over Sorted(). For a plain column the view wraps the cached
// sorted slice; for a segmented-snapshot column it wraps the cached sorted
// RUNS (sealed prefix + tail) and answers by selection, so a live query
// never pays the O(n) merge that Sorted() would materialize. This is the
// read path behind core.StreamQuery and the streaming-ingest benchmark.
func (c *FloatColumn) Stats() *stats.RunsView {
	if c == nil {
		return stats.NewRunsView()
	}
	if runs := c.sortedRuns(); runs != nil {
		return stats.NewRunsView(runs...)
	}
	return stats.NewRunsView(c.Sorted())
}

// SizeClass maps a GPU count onto the paper's §V job-size classes:
// 1 GPU, 2 GPUs, 3–8 GPUs, and 9+ GPUs.
func SizeClass(numGPUs int) int {
	switch {
	case numGPUs <= 1:
		return 0
	case numGPUs == 2:
		return 1
	case numGPUs <= 8:
		return 2
	default:
		return 3
	}
}

// NumSizeClasses is the number of §V job-size classes.
const NumSizeClasses = 4

// Columns is the columnar projection of a Dataset, built in ONE pass over
// the jobs: the filtered analysis populations, typed float64/int vectors for
// every per-job quantity the characterization suite consumes, and grouping
// indexes by user and submission interface. All vectors follow dataset
// (submission-log) order, so sequential accumulations over them reproduce
// the row-walking analyses bit for bit; sorted views are materialized
// lazily per column and shared by every analysis that needs one.
type Columns struct {
	// GPU is the analysis population (GPU jobs running at least
	// MinGPUJobRunSec); the columns below are aligned with it.
	GPU      []*JobRecord
	RunMin   *FloatColumn // run time, minutes
	WaitSec  *FloatColumn // queue wait, seconds
	WaitPct  *FloatColumn // wait as % of service time
	GPUHours *FloatColumn // GPU hours (NumGPUs × run time)
	HostCPU  *FloatColumn // mean host-CPU utilization, %
	NumGPUs  []int
	// Mean[m] and Max[m] are the job-level mean/max of GPU metric m
	// (averaged across the job's GPUs, as JobRecord.GPU records them).
	Mean [metrics.NumMetrics]*FloatColumn
	Max  [metrics.NumMetrics]*FloatColumn
	// WaitBySize[c] is the wait-seconds column of §V size class c.
	WaitBySize [NumSizeClasses]*FloatColumn

	// Multi is the subset of GPU with two or more GPUs.
	Multi []*JobRecord

	// CPU jobs and their columns.
	CPU        []*JobRecord
	CPURunMin  *FloatColumn
	CPUWaitSec *FloatColumn
	CPUWaitPct *FloatColumn
	CPUHostCPU *FloatColumn

	// Users lists distinct users of the GPU population, ascending; ByUser
	// maps each to the indices of its jobs in GPU (dataset order), and
	// ByIface groups the same indices by submission interface.
	Users   []int
	ByUser  map[int][]int32
	ByIface [NumInterfaces][]int32

	// SeriesIDs is the sorted key set of the detailed-monitoring subset, a
	// deterministic iteration order over Dataset.Series.
	SeriesIDs []int64

	// TotalGPUHours is the GPU-hour sum over the analysis population,
	// accumulated in dataset order.
	TotalGPUHours float64
	DurationDays  float64

	series map[int64]*TimeSeries
}

// BuildColumns projects d into columns in a single pass over d.Jobs (plus
// one sort per grouping key set). Prefer Dataset.Columns, which memoizes.
func BuildColumns(d *Dataset) *Columns {
	c := &Columns{
		ByUser:       make(map[int][]int32),
		DurationDays: d.DurationDays,
		series:       d.Series,
	}
	nGPU := 0
	for i := range d.Jobs {
		if j := &d.Jobs[i]; j.IsGPU() && j.RunSec >= MinGPUJobRunSec {
			nGPU++
		}
	}
	nCPU := 0
	for i := range d.Jobs {
		if !d.Jobs[i].IsGPU() {
			nCPU++
		}
	}
	c.GPU = make([]*JobRecord, 0, nGPU)
	c.NumGPUs = make([]int, 0, nGPU)
	runMin := make([]float64, 0, nGPU)
	waitSec := make([]float64, 0, nGPU)
	waitPct := make([]float64, 0, nGPU)
	hours := make([]float64, 0, nGPU)
	hostCPU := make([]float64, 0, nGPU)
	var mean, maxv [metrics.NumMetrics][]float64
	for m := range mean {
		mean[m] = make([]float64, 0, nGPU)
		maxv[m] = make([]float64, 0, nGPU)
	}
	var bySize [NumSizeClasses][]float64
	c.CPU = make([]*JobRecord, 0, nCPU)
	cpuRunMin := make([]float64, 0, nCPU)
	cpuWaitSec := make([]float64, 0, nCPU)
	cpuWaitPct := make([]float64, 0, nCPU)
	cpuHostCPU := make([]float64, 0, nCPU)

	for i := range d.Jobs {
		j := &d.Jobs[i]
		if !j.IsGPU() {
			c.CPU = append(c.CPU, j)
			cpuRunMin = append(cpuRunMin, j.RunSec/60)
			cpuWaitSec = append(cpuWaitSec, j.WaitSec)
			cpuWaitPct = append(cpuWaitPct, j.WaitFraction())
			cpuHostCPU = append(cpuHostCPU, j.HostCPU.Mean)
			continue
		}
		if j.RunSec < MinGPUJobRunSec {
			continue
		}
		idx := int32(len(c.GPU))
		c.GPU = append(c.GPU, j)
		c.NumGPUs = append(c.NumGPUs, j.NumGPUs)
		runMin = append(runMin, j.RunSec/60)
		waitSec = append(waitSec, j.WaitSec)
		waitPct = append(waitPct, j.WaitFraction())
		h := j.GPUHours()
		hours = append(hours, h)
		c.TotalGPUHours += h
		hostCPU = append(hostCPU, j.HostCPU.Mean)
		for m := metrics.Metric(0); m < metrics.NumMetrics; m++ {
			mean[m] = append(mean[m], j.GPU[m].Mean)
			maxv[m] = append(maxv[m], j.GPU[m].Max)
		}
		bySize[SizeClass(j.NumGPUs)] = append(bySize[SizeClass(j.NumGPUs)], j.WaitSec)
		if j.NumGPUs >= 2 {
			c.Multi = append(c.Multi, j)
		}
		c.ByUser[j.User] = append(c.ByUser[j.User], idx)
		if j.Interface >= 0 && j.Interface < NumInterfaces {
			c.ByIface[j.Interface] = append(c.ByIface[j.Interface], idx)
		}
	}

	c.RunMin = NewFloatColumn(runMin)
	c.WaitSec = NewFloatColumn(waitSec)
	c.WaitPct = NewFloatColumn(waitPct)
	c.GPUHours = NewFloatColumn(hours)
	c.HostCPU = NewFloatColumn(hostCPU)
	for m := range mean {
		c.Mean[m] = NewFloatColumn(mean[m])
		c.Max[m] = NewFloatColumn(maxv[m])
	}
	for s := range bySize {
		c.WaitBySize[s] = NewFloatColumn(bySize[s])
	}
	c.CPURunMin = NewFloatColumn(cpuRunMin)
	c.CPUWaitSec = NewFloatColumn(cpuWaitSec)
	c.CPUWaitPct = NewFloatColumn(cpuWaitPct)
	c.CPUHostCPU = NewFloatColumn(cpuHostCPU)

	c.Users = make([]int, 0, len(c.ByUser))
	for u := range c.ByUser {
		c.Users = append(c.Users, u)
	}
	sort.Ints(c.Users)

	c.SeriesIDs = make([]int64, 0, len(d.Series))
	for id := range d.Series {
		c.SeriesIDs = append(c.SeriesIDs, id)
	}
	sort.Slice(c.SeriesIDs, func(a, b int) bool { return c.SeriesIDs[a] < c.SeriesIDs[b] })
	return c
}

// Series returns the detailed time series of a job, or nil. Iterate
// SeriesIDs for a deterministic order over the monitoring subset.
func (c *Columns) Series(id int64) *TimeSeries { return c.series[id] }

// Gather returns the values of col at the given row indices, in index
// order — the per-group projection used by the user and interface analyses.
func Gather(col *FloatColumn, idx []int32) []float64 {
	out := make([]float64, len(idx))
	vals := col.Values()
	for i, k := range idx {
		out[i] = vals[k]
	}
	return out
}
