package trace

import (
	"bytes"
	"testing"
)

// TestFaultFieldsRoundTrip pins the requeue/failure-loss columns through
// both codecs: a record carrying recovery telemetry must come back with the
// same values from CSV and from JSON.
func TestFaultFieldsRoundTrip(t *testing.T) {
	d := NewDataset(1)
	j := gpuJob(1, 0, 600, 2)
	j.Requeues = 3
	j.FailureLossSec = 512.25
	d.Add(j)
	d.Add(cpuJob(2, 1, 120)) // zero-valued fault fields must survive too

	var csvBuf, jsonBuf bytes.Buffer
	if err := d.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(bytes.NewReader(csvBuf.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadJSON(bytes.NewReader(jsonBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []*Dataset{fromCSV, fromJSON} {
		if got := ds.Jobs[0]; got.Requeues != 3 || got.FailureLossSec != 512.25 {
			t.Fatalf("fault fields lost in round trip: requeues=%d loss=%v", got.Requeues, got.FailureLossSec)
		}
		if got := ds.Jobs[1]; got.Requeues != 0 || got.FailureLossSec != 0 {
			t.Fatalf("zero fault fields corrupted: requeues=%d loss=%v", got.Requeues, got.FailureLossSec)
		}
	}
}

// TestCodecsRejectNegativeFaultFieldsIdentically extends the codec-agreement
// contract to the recovery telemetry: a negative requeue count or failure
// loss is rejected by BOTH writers with the same record-level error, so a
// dataset cannot round-trip through one codec and not the other.
func TestCodecsRejectNegativeFaultFieldsIdentically(t *testing.T) {
	mutations := map[string]func(*JobRecord){
		"negative-requeues": func(j *JobRecord) { j.Requeues = -1 },
		"negative-loss":     func(j *JobRecord) { j.FailureLossSec = -0.5 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			d := NewDataset(1)
			j := gpuJob(1, 0, 600, 1)
			mutate(&j)
			d.Add(j)
			var csvBuf, jsonBuf bytes.Buffer
			csvErr := d.WriteCSV(&csvBuf)
			jsonErr := d.WriteJSON(&jsonBuf)
			if csvErr == nil || jsonErr == nil {
				t.Fatalf("negative fault field accepted: csv err=%v, json err=%v", csvErr, jsonErr)
			}
			if csvErr.Error() != jsonErr.Error() {
				t.Fatalf("codecs diverge on rejection:\ncsv:  %v\njson: %v", csvErr, jsonErr)
			}
		})
	}
}

// TestReadCSVRejectsNegativeFaultLiterals ensures hand-edited traces with
// negative recovery telemetry are refused on the read path as well.
func TestReadCSVRejectsNegativeFaultLiterals(t *testing.T) {
	for _, bad := range []string{"-1", "-0.5"} {
		d := NewDataset(1)
		j := gpuJob(1, 0, 600, 1)
		j.Requeues = 31337 // sentinel: requeues then failure_loss_sec
		j.FailureLossSec = 31338
		d.Add(j)
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		for _, sentinel := range []string{"31337", "31338"} {
			corrupted := bytes.Replace(buf.Bytes(), []byte(sentinel), []byte(bad), 1)
			if _, err := ReadCSV(bytes.NewReader(corrupted), 1); err == nil {
				t.Fatalf("CSV with %s=%q was accepted", sentinel, bad)
			}
		}
	}
}
