package repro

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/report"
	"repro/internal/slurm"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestEndToEndAnalyticPath runs the full analytic pipeline — generate,
// persist, reload, characterize, render — and verifies the two dataset
// representations agree on every figure input.
func TestEndToEndAnalyticPath(t *testing.T) {
	cfg := workload.ScaledConfig(0.02)
	cfg.Seed = 17
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.BuildDataset(g.GenerateSpecs())

	// Persist as JSON, reload, and compare the reports.
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	repA := core.Characterize(ds)
	repB := core.Characterize(back)
	if repA.Runtimes.GPU.P50 != repB.Runtimes.GPU.P50 {
		t.Fatalf("runtime medians diverge after JSON round trip: %v vs %v",
			repA.Runtimes.GPU.P50, repB.Runtimes.GPU.P50)
	}
	if repA.Utilization.SM.P50 != repB.Utilization.SM.P50 {
		t.Fatal("utilization medians diverge after JSON round trip")
	}
	if repA.Phases.JobsAnalyzed != repB.Phases.JobsAnalyzed {
		t.Fatal("phase subsets diverge after JSON round trip")
	}

	// CSV path drops series and per-GPU detail but preserves the job table.
	buf.Reset()
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csvBack, err := trace.ReadCSV(&buf, cfg.DurationDays)
	if err != nil {
		t.Fatal(err)
	}
	if len(csvBack.Jobs) != len(ds.Jobs) {
		t.Fatalf("CSV lost jobs: %d vs %d", len(csvBack.Jobs), len(ds.Jobs))
	}
	repC := core.Characterize(csvBack)
	if math.Abs(repC.Runtimes.GPU.P50-repA.Runtimes.GPU.P50) > 1e-9 {
		t.Fatal("CSV round trip changed runtimes")
	}

	// Rendering must handle the full report without error.
	var out bytes.Buffer
	if err := report.RenderReport(&out, repA); err != nil {
		t.Fatal(err)
	}
	if out.Len() < 2000 {
		t.Fatalf("rendered report suspiciously short: %d bytes", out.Len())
	}

	// CSV figure export round-trips through the filesystem.
	dir := filepath.Join(t.TempDir(), "figs")
	if err := report.ExportCSVDir(dir, repA); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no figures exported")
	}
}

// TestEndToEndSimulationPath runs the same specs through the discrete-event
// scheduler with monitoring and fault injection, and checks that the joined
// dataset matches the analytic one on the utilization marginals (the two
// paths must tell the same story).
func TestEndToEndSimulationPath(t *testing.T) {
	gcfg := workload.ScaledConfig(0.01)
	gcfg.Seed = 23
	g, err := workload.NewGenerator(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := g.GenerateSpecs()
	analytic := g.BuildDataset(specs)

	scfg := slurm.DefaultConfig()
	scfg.Cluster.Nodes = 24
	mc := monitor.DefaultConfig()
	mc.GPUIntervalSec = 60
	scfg.Monitor = &mc
	scfg.MonitorSeed = 23
	sim, err := slurm.NewSimulator(scfg)
	if err != nil {
		t.Fatal(err)
	}
	tel := sim.EnableTelemetry(0)
	results, st, err := sim.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != len(specs) {
		t.Fatalf("completed %d of %d", st.Completed, len(specs))
	}
	simDS := sim.BuildDataset(specs, results, gcfg.DurationDays)
	if err := simDS.Validate(); err != nil {
		t.Fatal(err)
	}

	// The two paths must agree on the utilization story (sampling error and
	// queueing differences allowed).
	a := core.Utilization(analytic)
	s := core.Utilization(simDS)
	if math.Abs(a.SM.P50-s.SM.P50) > 3 {
		t.Fatalf("paths disagree on SM median: analytic %v vs simulated %v", a.SM.P50, s.SM.P50)
	}
	if math.Abs(a.MemSize.P50-s.MemSize.P50) > 3 {
		t.Fatalf("paths disagree on memsize median: %v vs %v", a.MemSize.P50, s.MemSize.P50)
	}

	// Scheduler telemetry covered the run.
	if len(tel.Points) == 0 || tel.PeakQueueLen() < 0 {
		t.Fatal("telemetry empty")
	}

	// Lifecycle classification identical across paths (it only reads
	// scheduler-side fields).
	la := core.Lifecycle(analytic)
	ls := core.Lifecycle(simDS)
	for c := trace.Category(0); c < trace.NumCategories; c++ {
		if math.Abs(la.JobShare[c]-ls.JobShare[c]) > 1e-9 {
			t.Fatalf("category %v share differs across paths", c)
		}
	}
}

// TestEndToEndFaultyMonitoring injects monitor faults on a slice of nodes
// and verifies the pipeline degrades gracefully: stalled jobs yield zero
// digests, drops are counted, and the dataset still validates.
func TestEndToEndFaultyMonitoring(t *testing.T) {
	gcfg := workload.ScaledConfig(0.005)
	gcfg.Seed = 31
	g, err := workload.NewGenerator(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := g.GenerateSpecs()

	mc := monitor.DefaultConfig()
	mc.GPUIntervalSec = 120
	pipe, err := monitor.NewPipeline(mc, 31)
	if err != nil {
		t.Fatal(err)
	}
	pipe.InjectFaults(monitor.FaultPlan{
		0: {DropRate: 0.5},
		1: {StallProb: 1},
	})
	stalledSeen := false
	for i := range specs {
		sp := &specs[i]
		if !sp.IsGPU() {
			continue
		}
		sources := make([]monitor.Source, len(sp.Profiles))
		for k, p := range sp.Profiles {
			sources[k] = p
		}
		node := int(sp.ID) % 4
		m := pipe.Prolog(sp.ID, node, gcfg.GPUSpec, gcfg.PowerModel, sources, false)
		if err := pipe.Epilog(m); err != nil {
			t.Fatal(err)
		}
		if node == 1 {
			sums := pipe.Summaries(sp.ID)
			if sums[0][metrics.SMUtil].Max != 0 {
				t.Fatalf("stalled node produced data for job %d", sp.ID)
			}
			stalledSeen = true
		}
	}
	if !stalledSeen {
		t.Fatal("no job landed on the stalled node")
	}
	if pipe.DroppedSamples() == 0 {
		t.Fatal("dropping node lost no samples")
	}
	if pipe.StalledJobs() == 0 {
		t.Fatal("stalled jobs not counted")
	}
}
