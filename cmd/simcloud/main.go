// Command simcloud runs the discrete-event path end to end: synthesize a
// job population, schedule it on the simulated 224-node cluster through the
// Slurm-like scheduler with the monitoring pipeline attached, and report
// scheduling statistics plus the Fig. 3b queue-wait comparison. The point of
// this path is validation — the short GPU waits emerge from the co-location
// policy, not from calibration (try -colocate=false to see them collapse).
//
// Usage:
//
//	simcloud -scale 0.05
//	simcloud -scale 0.05 -nodes 40 -colocate=false
//	simcloud -in trace.csv                     # replay a recorded trace
//	simcloud -scale 0.05 -reps 16 -workers 8   # replicated run with CIs
//
// With -reps N > 1 the run is replicated N times with independently-seeded
// populations (streams split from -seed) across -workers goroutines, and the
// report becomes across-replication statistics: mean, standard error and a
// bootstrap confidence interval per metric. Ctrl-C returns the partial
// batch. The merged output is bit-identical for any -workers value.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/monitor"
	"repro/internal/report"
	"repro/internal/slurm"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simcloud: ")
	var (
		in          = flag.String("in", "", "replay a recorded dataset (.csv or .json from tracegen) instead of generating")
		days        = flag.Float64("days", 125, "observation window for CSV inputs")
		scale       = flag.Float64("scale", 0.05, "population scale relative to the paper")
		seed        = flag.Uint64("seed", 1, "generator seed")
		nodes       = flag.Int("nodes", 0, "cluster nodes (0 = scale the 224-node machine with the workload)")
		colocate    = flag.Bool("colocate", true, "share node CPUs between GPU jobs and CPU slices (production policy)")
		monInterval = flag.Float64("monitor-interval", 30, "GPU sampling cadence in simulated seconds (0 = disable monitoring)")
		out         = flag.String("out", "", "optional path to write the resulting dataset (JSON)")
		reps        = flag.Int("reps", 1, "independently-seeded replications (>1 switches to the replicated report)")
		workers     = flag.Int("workers", 0, "worker goroutines for replicated runs (0 = GOMAXPROCS)")
		mtbfCrash   = flag.Float64("mtbf-crash", 0, "per-node hard-crash MTBF in hours (0 = no crashes)")
		mtbfDrain   = flag.Float64("mtbf-drain", 0, "per-node graceful-drain MTBF in hours (0 = no drains)")
		mtbfGPU     = flag.Float64("mtbf-gpu", 0, "per-GPU fatal-error MTBF in hours (0 = no GPU fatals)")
		repairHours = flag.Float64("repair-hours", 2, "mean node repair time in hours")
		maxRetries  = flag.Int("max-retries", 3, "requeue attempts before a failed job is abandoned")
		faultSeed   = flag.Uint64("fault-seed", 0, "failure-stream seed (0 = derive from -seed)")
		shards      = flag.Int("shards", 1, "partition the cluster into independent node-group shards (>1 enables the parallel sharded simulator)")
		shardWork   = flag.Int("shard-workers", 0, "concurrent shard executors per window round (0 = GOMAXPROCS); output is identical for any value")
		windowSec   = flag.Float64("window", 0, "conservative shard synchronization window in simulated seconds (0 = default)")
		predictMode = flag.String("predict", "off", "backfill estimator: off (conservative fence), limit (requested wall-clock), forecast (online runtime forecasts with prefix refinement)")
		predObs     = flag.Float64("predict-obs-scale", 1, "scale observed runtimes before they feed the forecaster (mispredict robustness knob: <1 under-estimates, >1 over-estimates)")
		predFreeze  = flag.Int("predict-freeze", 0, "freeze per-user priors after this many observations (stale-prior robustness knob; 0 = never)")
		reserveAge  = flag.Float64("reservation-age", 0, "blocked-job age (s) that arms a backfill reservation (0 = production default)")
	)
	flag.Parse()
	sharding := slurm.Sharding{Shards: *shards, Workers: *shardWork, WindowSec: *windowSec}

	plan := faults.Plan{
		NodeCrashMTBFHours: *mtbfCrash,
		NodeDrainMTBFHours: *mtbfDrain,
		GPUFatalMTBFHours:  *mtbfGPU,
		MeanRepairHours:    *repairHours,
	}

	gcfg := workload.ScaledConfig(*scale)
	gcfg.Seed = *seed

	if *reps > 1 {
		if *in != "" {
			log.Fatal("replicated runs (-reps > 1) regenerate the population per replication; -in is not supported")
		}
		scfg := simConfig(*nodes, *scale, *colocate, *monInterval, *seed)
		applyFaults(&scfg, plan, *faultSeed, *seed, *maxRetries)
		applyPredict(&scfg, *predictMode, *predObs, *predFreeze, *reserveAge)
		runReplicated(gcfg, scfg, sharding, *reps, *workers, *seed)
		return
	}

	var specs []workload.JobSpec
	if *in != "" {
		ds, err := loadDataset(*in, *days)
		if err != nil {
			log.Fatal(err)
		}
		specs = workload.ReplaySpecs(ds, *seed)
		gcfg.DurationDays = ds.DurationDays
	} else {
		gen, err := workload.NewGenerator(gcfg)
		if err != nil {
			log.Fatal(err)
		}
		specs = gen.GenerateSpecs()
	}

	scfg := simConfig(*nodes, *scale, *colocate, *monInterval, *seed)
	applyFaults(&scfg, plan, *faultSeed, *seed, *maxRetries)
	applyPredict(&scfg, *predictMode, *predObs, *predFreeze, *reserveAge)
	var rejected []workload.JobSpec
	specs, rejected = slurm.Feasible(scfg, specs)
	if len(rejected) > 0 {
		log.Printf("rejected %d jobs exceeding cluster capacity (Slurm partition limits)", len(rejected))
	}
	if scfg.Monitor != nil {
		// Detailed series for the scaled subset, chosen by stride.
		detailed := map[int64]bool{}
		stride := len(specs) / max(1, gcfg.TimeSeriesJobs)
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(specs); i += stride {
			if specs[i].IsGPU() {
				detailed[specs[i].ID] = true
			}
		}
		scfg.DetailedJobs = detailed
	}

	var (
		results map[int64]*slurm.Result
		st      slurm.Stats
		ds      *trace.Dataset
		tel     *slurm.Telemetry
		shRun   *slurm.ShardedRun
	)
	if *shards > 1 {
		run, err := slurm.SimulateSharded(context.Background(), scfg, specs, sharding)
		if err != nil {
			log.Fatal(err)
		}
		if len(run.Rejected) > 0 {
			log.Printf("rejected %d jobs exceeding shard capacity", len(run.Rejected))
		}
		st = run.Merged
		ds = run.BuildDataset(gcfg.DurationDays)
		results = make(map[int64]*slurm.Result, st.Completed)
		for _, shard := range run.Results {
			for id, res := range shard {
				results[id] = res
			}
		}
		shRun = run
	} else {
		sim, err := slurm.NewSimulator(scfg)
		if err != nil {
			log.Fatal(err)
		}
		tel = sim.EnableTelemetry(0)
		results, st, err = sim.Run(specs)
		if err != nil {
			log.Fatal(err)
		}
		ds = sim.BuildDataset(specs, results, gcfg.DurationDays)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	t := report.NewTable("simulation summary", "quantity", "value")
	t.AddRowF("jobs completed", st.Completed)
	t.AddRowF("cluster nodes", scfg.Cluster.Nodes)
	t.AddRowF("total GPUs", st.TotalGPUs)
	t.AddRowF("mean GPU occupancy", st.MeanGPUOccupancy())
	t.AddRowF("max queue length", st.MaxQueueLen)
	t.AddRowF("monitor overflows", st.MonitorOverflow)
	t.AddRowF("scheduler passes", st.SchedulePasses)
	t.AddRowF("allocation attempts", st.AllocAttempts)
	t.AddRowF("blocked-verdict cache hits", st.AllocCacheHits)
	if err := t.Render(w); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w)

	var gpuWaits, cpuWaits []float64
	for _, j := range ds.GPUJobs() {
		gpuWaits = append(gpuWaits, j.WaitSec)
	}
	for _, j := range ds.CPUJobs() {
		cpuWaits = append(cpuWaits, j.WaitSec)
	}
	t2 := report.NewTable("Fig 3b (DES path): queue waits", "population", "median (s)", "p90 (s)", "mean (s)")
	t2.AddRowF("GPU jobs", stats.Median(gpuWaits), stats.Quantile(gpuWaits, 0.9), stats.Mean(gpuWaits))
	t2.AddRowF("CPU jobs", stats.Median(cpuWaits), stats.Quantile(cpuWaits, 0.9), stats.Mean(cpuWaits))
	if err := t2.Render(w); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w)

	bySize := slurm.WaitBySize(specs, results)
	t3 := report.NewTable("Sec V (DES path): median wait by job size", "size", "median wait (s)")
	for c := 0; c < 4; c++ {
		t3.AddRowF(core.SizeClassLabel(c), bySize[c])
	}
	if err := t3.Render(w); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w)

	if tel != nil {
		occ := tel.OccupancyQuantiles(st.TotalGPUs, 0.25, 0.5, 0.9)
		t4 := report.NewTable("cluster telemetry", "quantity", "value")
		t4.AddRowF("occupancy p25/p50/p90", fmt.Sprintf("%.2f / %.2f / %.2f", occ[0], occ[1], occ[2]))
		t4.AddRowF("peak queue depth", tel.PeakQueueLen())
		t4.AddRowF("telemetry points", len(tel.Points))
		if err := t4.Render(w); err != nil {
			log.Fatal(err)
		}
	}
	if shRun != nil {
		t5 := report.NewTable("shard execution", "shard", "nodes", "jobs", "events", "horizon (s)")
		for i, sst := range shRun.ShardStats {
			t5.AddRowF(i, sst.TotalGPUs/max(1, scfg.Cluster.GPUsPerNode), len(shRun.Specs[i]), sst.EventsProcessed, sst.HorizonSec)
		}
		if err := t5.Render(w); err != nil {
			log.Fatal(err)
		}
		agg := shRun.WaitAgg()
		fmt.Fprintf(w, "sync windows: %d  merged wait mean: %.1fs over %d jobs\n",
			shRun.Windows, agg.Mean(), agg.N())
	}

	if scfg.Policy.Predict.Enabled {
		fmt.Fprintln(w)
		tp := report.NewTable("prediction-aware backfill", "quantity", "value")
		tp.AddRowF("predicted backfills", st.PredictedBackfills)
		meanBackfillWait := 0.0
		if st.PredictedBackfills > 0 {
			meanBackfillWait = st.PredictedBackfillWaitSec / float64(st.PredictedBackfills)
		}
		tp.AddRowF("mean backfilled-job wait (s)", meanBackfillWait)
		tp.AddRowF("prediction hits / misses", fmt.Sprintf("%d / %d", st.PredictHits, st.PredictMisses))
		if scored := st.PredictHits + st.PredictMisses; scored > 0 {
			tp.AddRowF("runtime forecast MAE (s)", st.PredictAbsErrSec/float64(scored))
		}
		if err := tp.Render(w); err != nil {
			log.Fatal(err)
		}
	}

	if !scfg.Faults.Empty() {
		fmt.Fprintln(w)
		if err := report.AvailabilitySummary(w, "fault injection: availability & goodput", st); err != nil {
			log.Fatal(err)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := ds.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "\nwrote dataset to %s\n", *out)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// simConfig builds the scheduler configuration shared by the single-run and
// replicated paths (replications skip the detailed-series subset, which is a
// per-population choice).
func simConfig(nodes int, scale float64, colocate bool, monInterval float64, seed uint64) slurm.Config {
	scfg := slurm.DefaultConfig()
	if nodes > 0 {
		scfg.Cluster.Nodes = nodes
	} else {
		n := int(float64(scfg.Cluster.Nodes) * scale)
		if n < 4 {
			n = 4
		}
		scfg.Cluster.Nodes = n
	}
	scfg.Policy.Colocate = colocate
	if monInterval > 0 {
		mc := monitor.DefaultConfig()
		mc.GPUIntervalSec = monInterval
		scfg.Monitor = &mc
		scfg.MonitorSeed = seed
	}
	return scfg
}

// applyFaults layers the CLI's fault plan onto a scheduler configuration.
// A zero plan leaves the configuration untouched, so the fault-free paths
// stay byte-identical to the pre-fault binary.
func applyFaults(scfg *slurm.Config, plan faults.Plan, faultSeed, seed uint64, maxRetries int) {
	if plan.Empty() {
		return
	}
	scfg.Faults = plan
	if faultSeed == 0 {
		faultSeed = seed
	}
	scfg.FaultSeed = faultSeed
	scfg.Requeue = slurm.DefaultRequeuePolicy()
	scfg.Requeue.MaxRetries = maxRetries
}

// applyPredict wires the -predict mode onto a scheduler configuration. The
// default ("off") leaves the conservative reservation fence untouched, so
// existing invocations stay byte-identical.
func applyPredict(scfg *slurm.Config, mode string, obsScale float64, freeze int, reserveAge float64) {
	switch mode {
	case "off":
	case "limit":
		scfg.Policy.Predict = slurm.PredictPolicy{Enabled: true, UseRequestedLimit: true}
	case "forecast":
		scfg.Policy.Predict = slurm.DefaultPredictPolicy()
		scfg.Policy.Predict.ObsScale = obsScale
		scfg.Policy.Predict.FreezeAfterObs = freeze
	default:
		log.Fatalf("unknown -predict mode %q (want off, limit, or forecast)", mode)
	}
	if reserveAge > 0 {
		scfg.Policy.ReservationAgeSec = reserveAge
	}
}

// runReplicated fans the generator→scheduler→characterization pipeline
// across the worker pool and prints across-replication statistics. Ctrl-C
// cancels the batch and reports whatever completed.
func runReplicated(gcfg workload.Config, scfg slurm.Config, sharding slurm.Sharding, reps, workers int, seed uint64) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	exp := engine.Experiment{Gen: gcfg, Sim: scfg, Sharding: sharding}
	batch, err := engine.Run(ctx, engine.Config{RootSeed: seed, Reps: reps, Workers: workers}, exp.Replicator())
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := report.ReplicationSummary(w, "replicated DES run", batch); err != nil {
		log.Fatal(err)
	}
}

// loadDataset reads a tracegen output file.
func loadDataset(path string, days float64) (*trace.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".json.gz"):
		return trace.ReadJSONGZ(f)
	case strings.HasSuffix(path, ".json"):
		return trace.ReadJSON(f)
	case strings.HasSuffix(path, ".csv.gz"), strings.HasSuffix(path, ".gz"):
		return trace.ReadCSVGZ(f, days)
	default:
		return trace.ReadCSV(f, days)
	}
}
