package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/durable/client"
	"repro/internal/trace"
)

// TestMain doubles as the chaos harness's server entry point: when
// SIMCLOUDD_RUN_SERVER is set, the test binary re-execs into run() — a real
// simcloudd process with real flags, a real listener, and real os.Exit
// crash semantics — instead of running tests.
func TestMain(m *testing.M) {
	if os.Getenv("SIMCLOUDD_RUN_SERVER") == "1" {
		log.SetFlags(0)
		log.SetPrefix("simcloudd: ")
		if err := run(strings.Split(os.Getenv("SIMCLOUDD_ARGS"), "\x1f")); err != nil {
			log.Fatal(err)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// chaosProc is one live simcloudd subprocess.
type chaosProc struct {
	cmd    *exec.Cmd
	base   string // http://127.0.0.1:port
	stderr *bytes.Buffer
	mu     sync.Mutex
	done   chan struct{}
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startProc launches the test binary as a simcloudd server on a random port
// and waits for its listen line.
func startProc(t *testing.T, args []string, chaosSpec string) *chaosProc {
	t.Helper()
	if chaosSpec != "" {
		args = append(append([]string(nil), args...), "-chaos="+chaosSpec)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"SIMCLOUDD_RUN_SERVER=1",
		"SIMCLOUDD_ARGS="+strings.Join(args, "\x1f"),
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &chaosProc{cmd: cmd, stderr: &bytes.Buffer{}, done: make(chan struct{})}

	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			fmt.Fprintln(p.stderr, line)
			p.mu.Unlock()
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case addr <- m[1]:
				default:
				}
			}
		}
	}()
	go func() {
		cmd.Wait()
		close(p.done)
	}()

	select {
	case a := <-addr:
		p.base = "http://" + a
	case <-p.done:
		t.Fatalf("server died before listening:\n%s", p.dump())
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("server never announced a listener:\n%s", p.dump())
	}
	return p
}

func (p *chaosProc) dump() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// kill SIGKILLs the process (if still alive) and waits for it to reap.
func (p *chaosProc) kill(t *testing.T) {
	t.Helper()
	select {
	case <-p.done:
		return
	default:
	}
	p.cmd.Process.Kill()
	select {
	case <-p.done:
	case <-time.After(10 * time.Second):
		t.Fatalf("server ignored SIGKILL:\n%s", p.dump())
	}
}

// awaitDeath waits for a chaos failpoint to take the process down.
func (p *chaosProc) awaitDeath(timeout time.Duration) bool {
	select {
	case <-p.done:
		return true
	case <-time.After(timeout):
		return false
	}
}

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// randKillSpec draws one failure-injection spec. WAL tears dominate (they
// exercise every byte offset of the commit path); the rest split between
// death-after-commit and the three snapshot failpoints.
func randKillSpec(rng *rand.Rand) string {
	switch r := rng.Intn(10); {
	case r < 6:
		return fmt.Sprintf("wal:%d", rng.Intn(2000))
	case r < 8:
		return "apply:1"
	case r == 8:
		return []string{"snaptmp:1", "snaprename:1"}[rng.Intn(2)]
	default:
		return "snapprune:1"
	}
}

// TestChaosKillRecovery is the acceptance harness: a real simcloudd
// subprocess is crashed with randomized failure injection — torn WAL writes
// at arbitrary byte offsets, deaths between commit and apply, deaths inside
// snapshot writing — plus raw SIGKILLs, while a retrying idempotent client
// feeds it batches. After every crash the server restarts from the same
// -data-dir and ingestion resumes with blind retries. At the end, one more
// hard kill and a clean restart must yield /v1/summary and /v1/figures
// byte-identical to an uninterrupted in-process server fed the same batches
// in the same order, with every batch applied exactly once.
//
// SIMCLOUDD_CHAOS_KILLS sets the kill count (default 8 keeps `go test`
// quick; `make chaos` runs 50+). SIMCLOUDD_CHAOS_SEED varies the kill
// schedule.
func TestChaosKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness is not -short")
	}
	kills := envInt("SIMCLOUDD_CHAOS_KILLS", 8)
	seed := envInt("SIMCLOUDD_CHAOS_SEED", 20260808)
	rng := rand.New(rand.NewSource(int64(seed)))

	ds := testDataset(t, 0.02, 23)
	numBatches := kills + 5
	if numBatches > len(ds.Jobs) {
		t.Fatalf("dataset too small: %d jobs for %d batches", len(ds.Jobs), numBatches)
	}
	bodies := make([][]byte, 0, numBatches)
	step := (len(ds.Jobs) + numBatches - 1) / numBatches
	for lo := 0; lo < len(ds.Jobs); lo += step {
		hi := lo + step
		if hi > len(ds.Jobs) {
			hi = len(ds.Jobs)
		}
		bodies = append(bodies, encodeBatch(t, ds, lo, hi).Bytes())
	}

	seg := trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 48, MaxSegments: 6}
	dir := t.TempDir()
	args := []string{
		"-addr=127.0.0.1:0",
		"-data-dir=" + dir,
		"-wal-sync=always",
		"-segment-jobs=" + strconv.Itoa(seg.SegmentJobs),
		"-max-segments=" + strconv.Itoa(seg.MaxSegments),
		"-days=" + strconv.FormatFloat(seg.DurationDays, 'g', -1, 64),
		"-snapshot-jobs=100",
		"-wal-rotate-bytes=65536",
	}

	newClient := func(base string) *client.Client {
		return client.New(base, client.Options{
			MaxAttempts: 4,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			SleepBudget: 2 * time.Second,
			Seed:        uint64(seed),
		})
	}

	killsUsed, crashes := 0, 0
	srv := startProc(t, args, "")
	for i, body := range bodies {
		// While the kill budget lasts, every batch lands on a freshly
		// crashed-and-rearmed server: SIGKILL whatever is running (a crash
		// at an arbitrary idle point), restart with a random failpoint.
		if killsUsed < kills {
			srv.kill(t)
			spec := randKillSpec(rng)
			killsUsed++
			srv = startProc(t, args, spec)
		}
		for attempt := 0; ; attempt++ {
			if attempt > 6 {
				t.Fatalf("batch %d not acked after %d server generations:\n%s", i, attempt, srv.dump())
			}
			_, err := newClient(srv.base).IngestBody(body)
			if err == nil {
				break
			}
			// The server died (failpoint or mid-request kill). Make sure
			// it is fully gone, then restart clean and blind-retry the
			// same body — the idempotency ledger guarantees exactly-once.
			crashes++
			if !srv.awaitDeath(5 * time.Second) {
				srv.kill(t)
			}
			srv = startProc(t, args, "")
		}
	}

	// Final hard kill: the state we verify is recovered state, not the
	// survivor's in-memory state.
	srv.kill(t)
	crashes++
	srv = startProc(t, args, "")
	defer srv.kill(t)
	t.Logf("%d kill specs armed, %d observed crash recoveries, %d batches", killsUsed, crashes, len(bodies))

	// Uninterrupted reference: an in-process server over a fresh store, fed
	// the same bodies in the same order.
	refStore, err := durable.Open(t.TempDir(), seg, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	ref := httptest.NewServer(newServer(refStore, serverConfig{workers: 1}).mux())
	defer ref.Close()
	rc := newClient(ref.URL)
	for i, body := range bodies {
		if _, err := rc.IngestBody(body); err != nil {
			t.Fatalf("reference ingest %d: %v", i, err)
		}
	}

	wantSum, gotSum := getRaw(t, ref.URL+"/v1/summary"), getRaw(t, srv.base+"/v1/summary")
	if gotSum != wantSum {
		t.Errorf("summary diverged after %d crashes:\n got %s\nwant %s", crashes, gotSum, wantSum)
	}
	wantFigs, gotFigs := stripFiguresHeader(getRaw(t, ref.URL+"/v1/figures")), stripFiguresHeader(getRaw(t, srv.base+"/v1/figures"))
	if gotFigs != wantFigs {
		t.Errorf("figures diverged after %d crashes (%d vs %d bytes)", crashes, len(gotFigs), len(wantFigs))
	}

	// Exactly-once: every body re-sent to the recovered server is a
	// duplicate; the store does not grow.
	var before statsResponse
	getJSON(t, srv.base+"/v1/stats", &before)
	if before.Jobs != len(ds.Jobs) {
		t.Errorf("recovered store has %d jobs, want %d", before.Jobs, len(ds.Jobs))
	}
	for i, body := range bodies {
		res, err := newClient(srv.base).IngestBody(body)
		if err != nil {
			t.Fatalf("duplicate probe %d: %v", i, err)
		}
		if !res.Duplicate {
			t.Errorf("batch %d replay not recognized as duplicate", i)
		}
	}
	var after statsResponse
	getJSON(t, srv.base+"/v1/stats", &after)
	if after.Jobs != before.Jobs {
		t.Errorf("duplicate replay grew the store: %d -> %d jobs", before.Jobs, after.Jobs)
	}
}

func getRaw(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s: %s", url, resp.Status, b)
	}
	return string(b)
}

// stripFiguresHeader drops the snapshot/timing header block (everything
// through the first blank line); the timing line legitimately differs
// between servers.
func stripFiguresHeader(s string) string {
	if i := strings.Index(s, "\n\n"); i >= 0 {
		return s[i+2:]
	}
	return s
}
