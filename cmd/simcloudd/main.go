// Command simcloudd is the always-on counterpart of simcloud: a
// long-running HTTP service that ingests job records into the segmented
// columnar store (trace.SegStore) and answers live figure queries while
// ingest continues — the architectural target of ROADMAP item 1, shaped
// like the system-wide telemetry services the paper's operational sections
// describe.
//
// The store is durable: every ingest batch, telemetry record and admin
// operation is committed to a CRC-framed, hash-chained write-ahead log
// (internal/durable) before it is applied, and the store checkpoints into
// snapshots. Kill the process at any instant and restarting with the same
// -data-dir recovers a store whose every query answer is byte-identical to
// one that never crashed — the chaos harness (make chaos) proves exactly
// that. Batches carry client IDs (X-Batch-ID, defaulting to the body's
// SHA-256), so a client retrying an ambiguous failure is applied exactly
// once.
//
// Ingest appends are O(tail): sealed segments are immutable, their sorted
// views are cached once and merged (never re-sorted) at query time, and a
// query between appends reuses the memoized snapshot outright. Memory is
// bounded by -max-jobs (ingest past the bound is rejected with 507) and
// -max-segments (sealed segments past the bound are pairwise compacted);
// overload is shed with 429 + Retry-After once the unsealed backlog passes
// -backlog-max, and request bodies are capped at -max-body-bytes (413).
//
// Usage:
//
//	simcloudd -addr :8080 -data-dir /var/lib/simcloudd
//	tracegen -scale 0.05 -json | curl -sS --data-binary @- localhost:8080/v1/ingest
//	curl -sS localhost:8080/v1/summary   # O(segments) streaming digest
//	curl -sS localhost:8080/v1/figures   # full characterization suite
//
// Endpoints:
//
//	POST /v1/ingest     JSON dataset (tracegen -json / simcloud -out format);
//	                    idempotent per X-Batch-ID; 400/413/429/507 on bad,
//	                    oversized, shed, or over-bound batches
//	POST /v1/telemetry  one monitoring-epilog record (job_id, per_gpu,
//	                    series), staged for the §II job-ID join
//	GET  /v1/stats      store geometry: jobs, segments, tail, staged, WAL
//	GET  /v1/summary    merged per-segment digest (counts, moments) as JSON
//	GET  /v1/figures    full figure suite over a snapshot (text tables)
//	POST /v1/seal       seal the tail now (admin, WAL-logged)
//	POST /v1/compact    pairwise-compact sealed segments now (admin, WAL-logged)
//	POST /v1/snapshot   checkpoint now (admin)
//	GET  /healthz       liveness: 200 while the process serves
//	GET  /readyz        readiness: 503 while draining or shedding load
//
// On SIGTERM/SIGINT the server drains: stops accepting work, finishes
// in-flight requests, flushes the WAL, writes a final snapshot and exits.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simcloudd: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// run is main minus the exit: flag parsing, recovery, serving, drain. The
// chaos harness re-execs the test binary into this function, so everything
// a real deployment does must happen here.
func run(args []string) error {
	fs := flag.NewFlagSet("simcloudd", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		dataDir     = fs.String("data-dir", "", "durable data directory (WAL + snapshots); empty = ephemeral temp dir")
		walSync     = fs.String("wal-sync", "always", "fsync policy for WAL appends: always | off")
		rotateBytes = fs.Int64("wal-rotate-bytes", durable.DefaultRotateBytes, "WAL file rotation threshold")
		snapJobs    = fs.Int("snapshot-jobs", 100_000, "checkpoint automatically every N ingested jobs (0 = only on shutdown)")
		segmentJobs = fs.Int("segment-jobs", trace.DefaultSegmentJobs, "seal the mutable tail every N jobs")
		maxSegments = fs.Int("max-segments", 64, "compact when sealed segments exceed N (0 = never)")
		maxJobs     = fs.Int("max-jobs", 2_000_000, "reject ingest beyond N stored jobs (0 = unbounded)")
		backlogMax  = fs.Int("backlog-max", 500_000, "shed ingest (429) while unsealed backlog exceeds N (0 = never)")
		maxBody     = fs.Int64("max-body-bytes", 64<<20, "reject request bodies larger than N bytes (413)")
		days        = fs.Float64("days", 125, "observation window for figure normalization")
		workers     = fs.Int("workers", 0, "worker goroutines for figure queries (0 = GOMAXPROCS)")
		grace       = fs.Duration("shutdown-grace", 10*time.Second, "drain deadline after SIGTERM")
		chaosSpec   = fs.String("chaos", "", "failure-injection spec (testing only; see internal/durable)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *walSync != "always" && *walSync != "off" {
		return fmt.Errorf("-wal-sync must be 'always' or 'off', got %q", *walSync)
	}
	chaos, err := durable.ParseChaos(*chaosSpec)
	if err != nil {
		return err
	}
	dir := *dataDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "simcloudd-")
		if err != nil {
			return err
		}
		log.Printf("no -data-dir: ephemeral store in %s", dir)
	}

	store, err := durable.Open(dir, trace.SegConfig{
		DurationDays: *days,
		SegmentJobs:  *segmentJobs,
		MaxSegments:  *maxSegments,
	}, durable.Options{
		Sync:         *walSync == "always",
		RotateBytes:  *rotateBytes,
		SnapshotJobs: *snapJobs,
		MaxJobs:      *maxJobs,
		Chaos:        chaos,
	})
	if err != nil {
		return fmt.Errorf("recovering %s: %w", dir, err)
	}

	srv := newServer(store, serverConfig{
		workers:    *workers,
		maxJobs:    *maxJobs,
		backlogMax: *backlogMax,
		maxBody:    *maxBody,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.mux(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute, // figure renders on huge stores are slow
		IdleTimeout:       2 * time.Minute,
	}
	// The chaos harness scrapes this exact line for the bound port.
	log.Printf("listening on %s (data-dir=%s wal-sync=%s segment-jobs=%d max-segments=%d max-jobs=%d backlog-max=%d)",
		ln.Addr(), dir, *walSync, *segmentJobs, *maxSegments, *maxJobs, *backlogMax)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("draining (grace %s)", *grace)
	srv.draining.Store(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	// Flush + final snapshot: the next start recovers without replay.
	if err := store.Close(); err != nil {
		return fmt.Errorf("closing store: %w", err)
	}
	log.Printf("drained: WAL flushed, snapshot written")
	return nil
}

type serverConfig struct {
	workers    int
	maxJobs    int
	backlogMax int
	maxBody    int64
}

// server holds the durable store and the request policy. All handlers are
// safe for concurrent use: the store serializes mutations internally and
// query snapshots are immutable.
type server struct {
	store    *durable.Store
	cfg      serverConfig
	draining atomic.Bool
}

func newServer(store *durable.Store, cfg serverConfig) *server {
	if cfg.maxBody <= 0 {
		cfg.maxBody = 64 << 20
	}
	return &server{store: store, cfg: cfg}
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/v1/ingest", s.handleIngest)
	m.HandleFunc("/v1/telemetry", s.handleTelemetry)
	m.HandleFunc("/v1/stats", getOnly(s.handleStats))
	m.HandleFunc("/v1/summary", getOnly(s.handleSummary))
	m.HandleFunc("/v1/figures", getOnly(s.handleFigures))
	m.HandleFunc("/v1/seal", s.handleSeal)
	m.HandleFunc("/v1/compact", s.handleCompact)
	m.HandleFunc("/v1/snapshot", s.handleSnapshot)
	m.HandleFunc("/healthz", s.handleHealthz)
	m.HandleFunc("/readyz", getOnly(s.handleReadyz))
	return m
}

// getOnly rejects non-GET methods with 405 (HEAD rides along for free).
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// admitWrite runs the write-path gate: drain state, then backlog shedding.
// It reports whether the request may proceed.
func (s *server) admitWrite(w http.ResponseWriter) bool {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return false
	}
	if s.cfg.backlogMax > 0 {
		if backlog := s.store.Backlog(); backlog > s.cfg.backlogMax {
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("backlog %d exceeds -backlog-max %d", backlog, s.cfg.backlogMax),
				http.StatusTooManyRequests)
			return false
		}
	}
	return true
}

// readBody reads a request body under the -max-body-bytes cap, mapping an
// overrun to 413. A false return means the response is already written.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("body exceeds -max-body-bytes %d", mbe.Limit),
				http.StatusRequestEntityTooLarge)
			return nil, false
		}
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return nil, false
	}
	return body, true
}

// ingestResponse reports one ingest batch's outcome. Field names are the
// wire contract of durable/client.Result.
type ingestResponse struct {
	Seq       uint64 `json:"seq"`
	Jobs      int    `json:"jobs"`
	TotalJobs int    `json:"total_jobs"`
	Segments  int    `json:"segments"`
	Duplicate bool   `json:"duplicate"`
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.admitWrite(w) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	id := r.Header.Get("X-Batch-ID")
	if id == "" {
		// Content-hash fallback: blind retries of the same bytes still
		// dedup even from clients that never heard of batch IDs.
		id = fmt.Sprintf("%x", sha256.Sum256(body))
	}
	out, dup, err := s.store.IngestBatch(id, body)
	if err != nil {
		var de *durable.DecodeError
		var ce *trace.CapacityError
		switch {
		case errors.As(err, &de):
			http.Error(w, fmt.Sprintf("decode: %v", de.Err), http.StatusBadRequest)
		case errors.As(err, &ce):
			http.Error(w, ce.Error(), http.StatusInsufficientStorage)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	writeJSON(w, ingestResponse{
		Seq:       out.Seq,
		Jobs:      out.Jobs,
		TotalJobs: s.store.Seg().Len(),
		Segments:  s.store.Seg().Segments(),
		Duplicate: dup,
	})
}

// telemetryRequest is the wire form of one monitoring-epilog record; it
// matches durable/client's encoding.
type telemetryRequest struct {
	JobID  int64                     `json:"job_id"`
	PerGPU []metrics.MetricSummaries `json:"per_gpu,omitempty"`
	Series *trace.TimeSeries         `json:"series,omitempty"`
}

func (s *server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !s.admitWrite(w) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req telemetryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, fmt.Sprintf("decode: %v", err), http.StatusBadRequest)
		return
	}
	if req.JobID < 0 {
		http.Error(w, "negative job_id", http.StatusBadRequest)
		return
	}
	if err := s.store.StageTelemetry(req.JobID, req.PerGPU, req.Series); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]int{"staged": s.store.Seg().StagedJobs()})
}

// statsResponse is the store-geometry view.
type statsResponse struct {
	Jobs     int    `json:"jobs"`
	MaxJobs  int    `json:"max_jobs"`
	Segments int    `json:"segments"`
	TailJobs int    `json:"tail_jobs"`
	Staged   int    `json:"staged_telemetry"`
	Gen      uint64 `json:"generation"`
	Backlog  int    `json:"backlog"`
	WALBytes int64  `json:"wal_bytes"`
	Chain    string `json:"chain"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	v := s.store.Seg().Snapshot()
	chain := s.store.ChainHead()
	writeJSON(w, statsResponse{
		Jobs:     v.NJobs,
		MaxJobs:  s.cfg.maxJobs,
		Segments: v.Segments,
		TailJobs: v.TailJobs,
		Staged:   s.store.Seg().StagedJobs(),
		Gen:      v.Gen,
		Backlog:  s.store.Backlog(),
		WALBytes: s.store.WALBytes(),
		Chain:    fmt.Sprintf("%x", chain[:]),
	})
}

// summaryResponse flattens the mergeable digest for JSON consumers.
type summaryResponse struct {
	Jobs     int `json:"jobs"`
	GPUJobs  int `json:"gpu_jobs"`
	CPUJobs  int `json:"cpu_jobs"`
	MultiGPU int `json:"multi_gpu_jobs"`

	TotalGPUHours float64 `json:"total_gpu_hours"`
	MeanWaitSec   float64 `json:"mean_wait_sec"`
	MeanRunMin    float64 `json:"mean_run_min"`
	MeanSMPct     float64 `json:"mean_sm_util_pct"`
}

func (s *server) handleSummary(w http.ResponseWriter, r *http.Request) {
	sum := s.store.Seg().Summary()
	resp := summaryResponse{
		Jobs:     sum.Jobs,
		GPUJobs:  sum.GPUJobs,
		CPUJobs:  sum.CPUJobs,
		MultiGPU: sum.MultiGPU,

		TotalGPUHours: sum.GPUHours.Sum(),
	}
	if sum.GPUJobs > 0 {
		resp.MeanWaitSec = sum.WaitSec.Mean()
		resp.MeanRunMin = sum.RunMin.Mean()
		resp.MeanSMPct = sum.MeanUtil[0].Mean()
	}
	writeJSON(w, resp)
}

func (s *server) handleFigures(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:allow nowallclock server-side query latency, not simulation time
	v := s.store.Seg().Snapshot()
	rep := core.CharacterizeSeg(v, s.cfg.workers)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	queryMS := float64(time.Since(start).Microseconds()) / 1000 //lint:allow nowallclock server-side query latency, not simulation time
	// The timing line is deliberately separate from the snapshot line: the
	// chaos harness byte-compares figure output across recoveries after
	// stripping this header block (everything through the first blank line).
	fmt.Fprintf(w, "# snapshot: %d jobs, %d segments (+%d tail)\n# query: %.1f ms\n\n",
		v.NJobs, v.Segments, v.TailJobs, queryMS)
	if err := report.RenderReport(w, rep); err != nil {
		// Headers are gone; all we can do is log.
		log.Printf("figures: %v", err)
	}
}

func (s *server) handleSeal(w http.ResponseWriter, r *http.Request) {
	s.handleAdmin(w, r, s.store.SealTail)
}

func (s *server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.handleAdmin(w, r, s.store.Compact)
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.handleAdmin(w, r, s.store.Snapshot)
}

func (s *server) handleAdmin(w http.ResponseWriter, r *http.Request, op func() error) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if err := op(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]int{"segments": s.store.Seg().Segments()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: answering at all is the signal. Never load-dependent, so
	// an overloaded server is not killed by its supervisor mid-backlog.
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	backlog := s.store.Backlog()
	if s.cfg.backlogMax > 0 && backlog > s.cfg.backlogMax {
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("backlog %d exceeds bound %d", backlog, s.cfg.backlogMax),
			http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, map[string]int{"backlog": backlog})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}
