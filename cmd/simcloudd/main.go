// Command simcloudd is the always-on counterpart of simcloud: a
// long-running HTTP service that ingests job records into the segmented
// columnar store (trace.SegStore) and answers live figure queries while
// ingest continues — the architectural target of ROADMAP item 1, shaped
// like the system-wide telemetry services the paper's operational sections
// describe.
//
// Ingest appends are O(tail): sealed segments are immutable, their sorted
// views are cached once and merged (never re-sorted) at query time, and a
// query between appends reuses the memoized snapshot outright. Memory is
// bounded by -max-jobs (ingest past the bound is rejected with 507) and
// -max-segments (sealed segments past the bound are pairwise compacted).
//
// Usage:
//
//	simcloudd -addr :8080 -segment-jobs 4096 -max-segments 64 -max-jobs 2000000
//	tracegen -scale 0.05 -json | curl -sS --data-binary @- localhost:8080/v1/ingest
//	curl -sS localhost:8080/v1/summary   # O(segments) streaming digest
//	curl -sS localhost:8080/v1/figures   # full characterization suite
//
// Endpoints:
//
//	POST /v1/ingest   JSON dataset (tracegen -json / simcloud -out format);
//	                  jobs append in input order, series join on job ID
//	GET  /v1/stats    store geometry: jobs, segments, tail, staged, memory bound
//	GET  /v1/summary  merged per-segment digest (counts, moments) as JSON
//	GET  /v1/figures  full figure suite over a snapshot (text tables)
//	POST /v1/seal     seal the tail now (admin)
//	POST /v1/compact  pairwise-compact sealed segments now (admin)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simcloudd: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		segmentJobs = flag.Int("segment-jobs", trace.DefaultSegmentJobs, "seal the mutable tail every N jobs")
		maxSegments = flag.Int("max-segments", 64, "compact when sealed segments exceed N (0 = never)")
		maxJobs     = flag.Int("max-jobs", 2_000_000, "reject ingest beyond N stored jobs (0 = unbounded)")
		days        = flag.Float64("days", 125, "observation window for figure normalization")
		workers     = flag.Int("workers", 0, "worker goroutines for figure queries (0 = GOMAXPROCS)")
	)
	flag.Parse()

	srv := newServer(trace.SegConfig{
		DurationDays: *days,
		SegmentJobs:  *segmentJobs,
		MaxSegments:  *maxSegments,
	}, *maxJobs, *workers)
	log.Printf("listening on %s (segment-jobs=%d max-segments=%d max-jobs=%d)",
		*addr, *segmentJobs, *maxSegments, *maxJobs)
	log.Fatal(http.ListenAndServe(*addr, srv.mux()))
}

// server holds the store and the query policy. All handlers are safe for
// concurrent use: the store serializes mutations internally and snapshots
// are immutable.
type server struct {
	store   *trace.SegStore
	maxJobs int
	workers int
}

func newServer(cfg trace.SegConfig, maxJobs, workers int) *server {
	return &server{store: trace.NewSegStore(cfg), maxJobs: maxJobs, workers: workers}
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/v1/ingest", s.handleIngest)
	m.HandleFunc("/v1/stats", s.handleStats)
	m.HandleFunc("/v1/summary", s.handleSummary)
	m.HandleFunc("/v1/figures", s.handleFigures)
	m.HandleFunc("/v1/seal", s.handleSeal)
	m.HandleFunc("/v1/compact", s.handleCompact)
	return m
}

// ingestResponse reports one ingest batch's outcome.
type ingestResponse struct {
	Ingested int `json:"ingested"`
	Series   int `json:"series"`
	Jobs     int `json:"jobs_total"`
	Segments int `json:"segments"`
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ds, err := trace.ReadJSON(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("decode: %v", err), http.StatusBadRequest)
		return
	}
	if s.maxJobs > 0 && s.store.Len()+len(ds.Jobs) > s.maxJobs {
		http.Error(w, fmt.Sprintf("store at %d jobs, batch of %d exceeds -max-jobs %d",
			s.store.Len(), len(ds.Jobs), s.maxJobs), http.StatusInsufficientStorage)
		return
	}
	s.store.AppendDataset(ds)
	writeJSON(w, ingestResponse{
		Ingested: len(ds.Jobs),
		Series:   len(ds.Series),
		Jobs:     s.store.Len(),
		Segments: s.store.Segments(),
	})
}

// statsResponse is the store-geometry view.
type statsResponse struct {
	Jobs     int    `json:"jobs"`
	MaxJobs  int    `json:"max_jobs"`
	Segments int    `json:"segments"`
	TailJobs int    `json:"tail_jobs"`
	Staged   int    `json:"staged_telemetry"`
	Gen      uint64 `json:"generation"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	v := s.store.Snapshot()
	writeJSON(w, statsResponse{
		Jobs:     v.NJobs,
		MaxJobs:  s.maxJobs,
		Segments: v.Segments,
		TailJobs: v.TailJobs,
		Staged:   s.store.StagedJobs(),
		Gen:      v.Gen,
	})
}

// summaryResponse flattens the mergeable digest for JSON consumers.
type summaryResponse struct {
	Jobs     int `json:"jobs"`
	GPUJobs  int `json:"gpu_jobs"`
	CPUJobs  int `json:"cpu_jobs"`
	MultiGPU int `json:"multi_gpu_jobs"`

	TotalGPUHours float64 `json:"total_gpu_hours"`
	MeanWaitSec   float64 `json:"mean_wait_sec"`
	MeanRunMin    float64 `json:"mean_run_min"`
	MeanSMPct     float64 `json:"mean_sm_util_pct"`
}

func (s *server) handleSummary(w http.ResponseWriter, r *http.Request) {
	sum := s.store.Summary()
	resp := summaryResponse{
		Jobs:     sum.Jobs,
		GPUJobs:  sum.GPUJobs,
		CPUJobs:  sum.CPUJobs,
		MultiGPU: sum.MultiGPU,

		TotalGPUHours: sum.GPUHours.Sum(),
	}
	if sum.GPUJobs > 0 {
		resp.MeanWaitSec = sum.WaitSec.Mean()
		resp.MeanRunMin = sum.RunMin.Mean()
		resp.MeanSMPct = sum.MeanUtil[0].Mean()
	}
	writeJSON(w, resp)
}

func (s *server) handleFigures(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:allow nowallclock server-side query latency, not simulation time
	v := s.store.Snapshot()
	rep := core.CharacterizeSeg(v, s.workers)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	queryMS := float64(time.Since(start).Microseconds()) / 1000 //lint:allow nowallclock server-side query latency, not simulation time
	fmt.Fprintf(w, "# snapshot: %d jobs, %d segments (+%d tail), query %.1f ms\n\n",
		v.NJobs, v.Segments, v.TailJobs, queryMS)
	if err := report.RenderReport(w, rep); err != nil {
		// Headers are gone; all we can do is log.
		log.Printf("figures: %v", err)
	}
}

func (s *server) handleSeal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.store.SealTail()
	writeJSON(w, map[string]int{"segments": s.store.Segments()})
}

func (s *server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.store.Compact()
	writeJSON(w, map[string]int{"segments": s.store.Segments()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}
