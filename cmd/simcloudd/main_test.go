package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testDataset synthesizes a small population for server tests.
func testDataset(t *testing.T, scale float64, seed uint64) *trace.Dataset {
	t.Helper()
	cfg := workload.ScaledConfig(scale)
	cfg.Seed = seed
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g.BuildDataset(g.GenerateSpecs())
}

// encodeBatch renders a job slice (plus its series) in the ingest format.
func encodeBatch(t *testing.T, ds *trace.Dataset, lo, hi int) *bytes.Buffer {
	t.Helper()
	batch := &trace.Dataset{Jobs: ds.Jobs[lo:hi], Series: map[int64]*trace.TimeSeries{}, DurationDays: ds.DurationDays}
	for _, j := range batch.Jobs {
		if ts := ds.Series[j.JobID]; ts != nil {
			batch.Series[j.JobID] = ts
		}
	}
	var buf bytes.Buffer
	if err := batch.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// newTestServer opens a durable store in dir (async WAL — these tests are
// about the HTTP surface, not fsync) and wraps it in a server.
func newTestServer(t *testing.T, dir string, seg trace.SegConfig, cfg serverConfig, opts durable.Options) *server {
	t.Helper()
	opts.MaxJobs = cfg.maxJobs
	store, err := durable.Open(dir, seg, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := store.Close(); err != nil && !strings.Contains(err.Error(), "closed") {
			t.Errorf("closing store: %v", err)
		}
	})
	return newServer(store, cfg)
}

// TestServerIngestQuery drives the full HTTP surface serially: batched
// ingest, stats, summary, admin seal/compact/snapshot, and a figures render
// that matches the batch pipeline over the same jobs.
func TestServerIngestQuery(t *testing.T) {
	ds := testDataset(t, 0.02, 3)
	srv := newTestServer(t, t.TempDir(),
		trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 100, MaxSegments: 8},
		serverConfig{workers: 2}, durable.Options{})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	step := len(ds.Jobs)/4 + 1
	lastSeq := uint64(0)
	for lo := 0; lo < len(ds.Jobs); lo += step {
		hi := lo + step
		if hi > len(ds.Jobs) {
			hi = len(ds.Jobs)
		}
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", encodeBatch(t, ds, lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: %s", resp.Status)
		}
		var ir ingestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ir.Jobs != hi-lo || ir.TotalJobs != hi || ir.Duplicate {
			t.Fatalf("ingest ack %+v after %d jobs", ir, hi)
		}
		if lo > 0 && ir.Seq <= lastSeq {
			t.Fatalf("WAL sequence %d not monotonic (prev %d)", ir.Seq, lastSeq)
		}
		lastSeq = ir.Seq
	}

	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Jobs != len(ds.Jobs) {
		t.Fatalf("stats.jobs = %d, want %d", st.Jobs, len(ds.Jobs))
	}
	if len(st.Chain) != 64 {
		t.Fatalf("stats.chain = %q, want a 32-byte hex digest", st.Chain)
	}

	var sum summaryResponse
	getJSON(t, ts.URL+"/v1/summary", &sum)
	cols := trace.BuildColumns(ds)
	if sum.GPUJobs != len(cols.GPU) || sum.CPUJobs != len(cols.CPU) {
		t.Fatalf("summary populations %d/%d, want %d/%d", sum.GPUJobs, sum.CPUJobs, len(cols.GPU), len(cols.CPU))
	}

	for _, ep := range []string{"/v1/seal", "/v1/compact", "/v1/snapshot"} {
		resp, err := http.Post(ts.URL+ep, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s", ep, resp.Status)
		}
	}

	// The rendered figures must match the batch pipeline over the same jobs.
	var wantText bytes.Buffer
	if err := report.RenderReport(&wantText, core.Characterize(ds)); err != nil {
		t.Fatal(err)
	}
	if body := figuresBody(t, ts.URL); body != wantText.String() {
		t.Errorf("figures render differs from batch pipeline (%d vs %d bytes)", len(body), wantText.Len())
	}
}

// figuresBody fetches /v1/figures and strips the header block (snapshot and
// timing lines, through the first blank line).
func figuresBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/figures")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := buf.String()
	if i := strings.Index(body, "\n\n"); i >= 0 {
		body = body[i+2:]
	}
	return body
}

// TestServerBoundedMemory pins the -max-jobs admission bound.
func TestServerBoundedMemory(t *testing.T) {
	ds := testDataset(t, 0.01, 5)
	srv := newTestServer(t, t.TempDir(),
		trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 50},
		serverConfig{workers: 1, maxJobs: len(ds.Jobs) / 2}, durable.Options{})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", encodeBatch(t, ds, 0, len(ds.Jobs)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-bound ingest: %s, want 507", resp.Status)
	}
	half := len(ds.Jobs) / 2
	resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", encodeBatch(t, ds, 0, half))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-bound ingest: %s", resp.Status)
	}
	if srv.store.Seg().Len() != half {
		t.Fatalf("store has %d jobs, want %d", srv.store.Seg().Len(), half)
	}
}

// TestServerIdempotentIngest pins exactly-once semantics: re-sending a body
// (same X-Batch-ID, or no ID at all — the server hashes the content) acks
// as a duplicate without growing the store.
func TestServerIdempotentIngest(t *testing.T) {
	ds := testDataset(t, 0.01, 11)
	srv := newTestServer(t, t.TempDir(),
		trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 50},
		serverConfig{workers: 1}, durable.Options{})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	body := encodeBatch(t, ds, 0, len(ds.Jobs)).Bytes()
	var first ingestResponse
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ir ingestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if i == 0 {
			if ir.Duplicate {
				t.Fatal("first send marked duplicate")
			}
			first = ir
			continue
		}
		if !ir.Duplicate {
			t.Fatalf("send %d not marked duplicate", i)
		}
		if ir.Seq != first.Seq || ir.Jobs != first.Jobs || ir.TotalJobs != first.TotalJobs {
			t.Fatalf("duplicate ack %+v differs from original %+v", ir, first)
		}
	}
	if srv.store.Seg().Len() != len(ds.Jobs) {
		t.Fatalf("store has %d jobs after 3 sends of one batch, want %d", srv.store.Seg().Len(), len(ds.Jobs))
	}
}

// TestServerRestartRecovers is the in-process durability round trip: ingest,
// drop the server, reopen the same data dir, and require byte-identical
// summary and figures.
func TestServerRestartRecovers(t *testing.T) {
	ds := testDataset(t, 0.02, 13)
	dir := t.TempDir()
	seg := trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 64, MaxSegments: 6}

	store, err := durable.Open(dir, seg, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(store, serverConfig{workers: 1})
	ts := httptest.NewServer(srv.mux())
	step := len(ds.Jobs)/5 + 1
	for lo := 0; lo < len(ds.Jobs); lo += step {
		hi := lo + step
		if hi > len(ds.Jobs) {
			hi = len(ds.Jobs)
		}
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", encodeBatch(t, ds, lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: %s", resp.Status)
		}
	}
	var wantSum summaryResponse
	getJSON(t, ts.URL+"/v1/summary", &wantSum)
	wantFigs := figuresBody(t, ts.URL)
	ts.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := durable.Open(dir, seg, durable.Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer store2.Close()
	srv2 := newServer(store2, serverConfig{workers: 1})
	ts2 := httptest.NewServer(srv2.mux())
	defer ts2.Close()

	var gotSum summaryResponse
	getJSON(t, ts2.URL+"/v1/summary", &gotSum)
	if gotSum != wantSum {
		t.Fatalf("summary after restart %+v, want %+v", gotSum, wantSum)
	}
	if got := figuresBody(t, ts2.URL); got != wantFigs {
		t.Fatalf("figures differ after restart (%d vs %d bytes)", len(got), len(wantFigs))
	}
}

// TestServerRequestLimits pins the request-policy surface: body-size cap
// (413), malformed JSON (400), method checks (405), and the health probes.
func TestServerRequestLimits(t *testing.T) {
	ds := testDataset(t, 0.005, 17)
	srv := newTestServer(t, t.TempDir(),
		trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 50},
		serverConfig{workers: 1, maxBody: 256}, durable.Options{})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	big := encodeBatch(t, ds, 0, len(ds.Jobs))
	if big.Len() <= 256 {
		t.Fatalf("test batch only %d bytes; cannot exercise the cap", big.Len())
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %s, want 413", resp.Status)
	}
	if srv.store.Seg().Len() != 0 {
		t.Fatal("oversized body mutated the store")
	}

	resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(`{"jobs": [`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %s, want 400", resp.Status)
	}

	resp, err = http.Post(ts.URL+"/v1/telemetry", "application/json", strings.NewReader(`{"job_id": -4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative telemetry job: %s, want 400", resp.Status)
	}

	// Wrong methods: GETs on write endpoints, POSTs on read endpoints.
	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/v1/ingest"},
		{http.MethodGet, "/v1/telemetry"},
		{http.MethodGet, "/v1/seal"},
		{http.MethodGet, "/v1/compact"},
		{http.MethodGet, "/v1/snapshot"},
		{http.MethodPost, "/v1/stats"},
		{http.MethodPost, "/v1/summary"},
		{http.MethodPost, "/v1/figures"},
		{http.MethodPost, "/readyz"},
	} {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: %s, want 405", c.method, c.path, resp.Status)
		}
		if allow := resp.Header.Get("Allow"); allow == "" {
			t.Errorf("%s %s: missing Allow header", c.method, c.path)
		}
	}

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: %s, want 200", probe, resp.Status)
		}
	}
}

// TestServerBackpressure pins load shedding: once the unsealed backlog
// exceeds -backlog-max, ingest answers 429 with Retry-After and /readyz
// flips to 503, and both recover after a seal drains the backlog.
func TestServerBackpressure(t *testing.T) {
	ds := testDataset(t, 0.01, 19)
	srv := newTestServer(t, t.TempDir(),
		// SegmentJobs above the dataset size: nothing seals on its own, so
		// every ingested job sits in the backlog until /v1/seal.
		trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 1 << 20},
		serverConfig{workers: 1, backlogMax: len(ds.Jobs) / 2}, durable.Options{})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", encodeBatch(t, ds, 0, len(ds.Jobs)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filling ingest: %s", resp.Status)
	}

	resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", encodeBatch(t, ds, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-backlog ingest: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded readyz: %s, want 503", resp.Status)
	}
	// Liveness never degrades with load.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("overloaded healthz: %s, want 200", resp.Status)
	}

	// Sealing moves the tail into immutable segments; the backlog drains.
	resp, err = http.Post(ts.URL+"/v1/seal", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seal: %s", resp.Status)
	}
	resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", encodeBatch(t, ds, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-seal ingest: %s, want 200", resp.Status)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-seal readyz: %s, want 200", resp.Status)
	}
}

// TestServerConcurrentIngestQuery is the -race scenario behind the
// race-stream make target: parallel ingest writers against parallel
// summary/stats/figures readers, then a final consistency check against the
// batch pipeline.
func TestServerConcurrentIngestQuery(t *testing.T) {
	ds := testDataset(t, 0.02, 7)
	srv := newTestServer(t, t.TempDir(),
		trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 64, MaxSegments: 6},
		serverConfig{workers: 2}, durable.Options{})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Writers own disjoint interleaved batches; ingest order across
			// writers is arbitrary, which the figures check below absorbs by
			// comparing populations, not order-sensitive bytes.
			step := len(ds.Jobs)/(writers*8) + 1
			for lo := w * step; lo < len(ds.Jobs); lo += writers * step {
				hi := lo + step
				if hi > len(ds.Jobs) {
					hi = len(ds.Jobs)
				}
				resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", encodeBatch(t, ds, lo, hi))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest: %s", resp.Status)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	readerErr := make(chan error, 3)
	var rwg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var st statsResponse
				if err := getJSONErr(ts.URL+"/v1/stats", &st); err != nil {
					readerErr <- err
					return
				}
				var sum summaryResponse
				if err := getJSONErr(ts.URL+"/v1/summary", &sum); err != nil {
					readerErr <- err
					return
				}
				if sum.Jobs < st.Jobs {
					// A later snapshot can only grow; the digest may run
					// ahead of the stats read, never behind it.
					readerErr <- fmt.Errorf("summary jobs %d < earlier stats jobs %d", sum.Jobs, st.Jobs)
					return
				}
				resp, err := http.Get(ts.URL + "/v1/figures")
				if err != nil {
					readerErr <- err
					return
				}
				resp.Body.Close()
			}
		}()
	}
	rwg.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}

	if srv.store.Seg().Len() != len(ds.Jobs) {
		t.Fatalf("store has %d jobs, want %d", srv.store.Seg().Len(), len(ds.Jobs))
	}
	sum := srv.store.Seg().Summary()
	cols := trace.BuildColumns(ds)
	if sum.GPUJobs != len(cols.GPU) || sum.CPUJobs != len(cols.CPU) || sum.MultiGPU != len(cols.Multi) {
		t.Fatalf("populations %d/%d/%d, want %d/%d/%d",
			sum.GPUJobs, sum.CPUJobs, sum.MultiGPU, len(cols.GPU), len(cols.CPU), len(cols.Multi))
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	if err := getJSONErr(url, v); err != nil {
		t.Fatal(err)
	}
}

func getJSONErr(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
