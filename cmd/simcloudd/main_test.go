package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testDataset synthesizes a small population for server tests.
func testDataset(t *testing.T, scale float64, seed uint64) *trace.Dataset {
	t.Helper()
	cfg := workload.ScaledConfig(scale)
	cfg.Seed = seed
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g.BuildDataset(g.GenerateSpecs())
}

// encodeBatch renders a job slice (plus its series) in the ingest format.
func encodeBatch(t *testing.T, ds *trace.Dataset, lo, hi int) *bytes.Buffer {
	t.Helper()
	batch := &trace.Dataset{Jobs: ds.Jobs[lo:hi], Series: map[int64]*trace.TimeSeries{}, DurationDays: ds.DurationDays}
	for _, j := range batch.Jobs {
		if ts := ds.Series[j.JobID]; ts != nil {
			batch.Series[j.JobID] = ts
		}
	}
	var buf bytes.Buffer
	if err := batch.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestServerIngestQuery drives the full HTTP surface serially: batched
// ingest, stats, summary, admin seal/compact, and a figures render that
// matches the batch pipeline over the same jobs.
func TestServerIngestQuery(t *testing.T) {
	ds := testDataset(t, 0.02, 3)
	srv := newServer(trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 100, MaxSegments: 8}, 0, 2)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	step := len(ds.Jobs)/4 + 1
	for lo := 0; lo < len(ds.Jobs); lo += step {
		hi := lo + step
		if hi > len(ds.Jobs) {
			hi = len(ds.Jobs)
		}
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", encodeBatch(t, ds, lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: %s", resp.Status)
		}
		var ir ingestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ir.Jobs != hi {
			t.Fatalf("jobs_total = %d after %d ingested", ir.Jobs, hi)
		}
	}

	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Jobs != len(ds.Jobs) {
		t.Fatalf("stats.jobs = %d, want %d", st.Jobs, len(ds.Jobs))
	}

	var sum summaryResponse
	getJSON(t, ts.URL+"/v1/summary", &sum)
	cols := trace.BuildColumns(ds)
	if sum.GPUJobs != len(cols.GPU) || sum.CPUJobs != len(cols.CPU) {
		t.Fatalf("summary populations %d/%d, want %d/%d", sum.GPUJobs, sum.CPUJobs, len(cols.GPU), len(cols.CPU))
	}

	for _, ep := range []string{"/v1/seal", "/v1/compact"} {
		resp, err := http.Post(ts.URL+ep, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s", ep, resp.Status)
		}
	}

	// The rendered figures must match the batch pipeline over the same jobs.
	var wantText, gotText bytes.Buffer
	if err := report.RenderReport(&wantText, core.Characterize(ds)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/figures")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gotText.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := gotText.String()
	if i := strings.Index(body, "\n\n"); i >= 0 {
		body = body[i+2:] // drop the snapshot header line
	}
	if body != wantText.String() {
		t.Errorf("figures render differs from batch pipeline (%d vs %d bytes)", len(body), wantText.Len())
	}
}

// TestServerBoundedMemory pins the -max-jobs admission bound.
func TestServerBoundedMemory(t *testing.T) {
	ds := testDataset(t, 0.01, 5)
	srv := newServer(trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 50}, len(ds.Jobs)/2, 1)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", encodeBatch(t, ds, 0, len(ds.Jobs)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-bound ingest: %s, want 507", resp.Status)
	}
	half := len(ds.Jobs) / 2
	resp, err = http.Post(ts.URL+"/v1/ingest", "application/json", encodeBatch(t, ds, 0, half))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-bound ingest: %s", resp.Status)
	}
	if srv.store.Len() != half {
		t.Fatalf("store has %d jobs, want %d", srv.store.Len(), half)
	}
}

// TestServerConcurrentIngestQuery is the -race scenario behind the
// race-stream make target: parallel ingest writers against parallel
// summary/stats/figures readers, then a final consistency check against the
// batch pipeline.
func TestServerConcurrentIngestQuery(t *testing.T) {
	ds := testDataset(t, 0.02, 7)
	srv := newServer(trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: 64, MaxSegments: 6}, 0, 2)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Writers own disjoint interleaved batches; ingest order across
			// writers is arbitrary, which the figures check below absorbs by
			// comparing populations, not order-sensitive bytes.
			step := len(ds.Jobs)/(writers*8) + 1
			for lo := w * step; lo < len(ds.Jobs); lo += writers * step {
				hi := lo + step
				if hi > len(ds.Jobs) {
					hi = len(ds.Jobs)
				}
				resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", encodeBatch(t, ds, lo, hi))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest: %s", resp.Status)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	readerErr := make(chan error, 3)
	var rwg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var st statsResponse
				if err := getJSONErr(ts.URL+"/v1/stats", &st); err != nil {
					readerErr <- err
					return
				}
				var sum summaryResponse
				if err := getJSONErr(ts.URL+"/v1/summary", &sum); err != nil {
					readerErr <- err
					return
				}
				if sum.Jobs < st.Jobs {
					// A later snapshot can only grow; the digest may run
					// ahead of the stats read, never behind it.
					readerErr <- fmt.Errorf("summary jobs %d < earlier stats jobs %d", sum.Jobs, st.Jobs)
					return
				}
				resp, err := http.Get(ts.URL + "/v1/figures")
				if err != nil {
					readerErr <- err
					return
				}
				resp.Body.Close()
			}
		}()
	}
	rwg.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}

	if srv.store.Len() != len(ds.Jobs) {
		t.Fatalf("store has %d jobs, want %d", srv.store.Len(), len(ds.Jobs))
	}
	sum := srv.store.Summary()
	cols := trace.BuildColumns(ds)
	if sum.GPUJobs != len(cols.GPU) || sum.CPUJobs != len(cols.CPU) || sum.MultiGPU != len(cols.Multi) {
		t.Fatalf("populations %d/%d/%d, want %d/%d/%d",
			sum.GPUJobs, sum.CPUJobs, sum.MultiGPU, len(cols.GPU), len(cols.CPU), len(cols.Multi))
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	if err := getJSONErr(url, v); err != nil {
		t.Fatal(err)
	}
}

func getJSONErr(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
