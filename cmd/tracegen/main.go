// Command tracegen synthesizes a Supercloud-shaped trace dataset along the
// analytic path and writes it to disk as CSV (job table) or JSON (full
// dataset including per-GPU summaries and the detailed time-series subset).
//
// Usage:
//
//	tracegen -scale 0.1 -seed 1 -out trace.csv
//	tracegen -scale 1.0 -json -out trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		scale  = flag.Float64("scale", 0.1, "population scale relative to the paper (1.0 = 74,820 jobs / 191 users)")
		seed   = flag.Uint64("seed", 1, "generator seed")
		out    = flag.String("out", "trace.csv", "output path")
		asJSON = flag.Bool("json", false, "write full JSON (per-GPU summaries + time series) instead of CSV")
		series = flag.Int("series", -1, "detailed time-series subset size (-1 = scaled paper default)")
	)
	flag.Parse()

	cfg := workload.ScaledConfig(*scale)
	cfg.Seed = *seed
	if *series >= 0 {
		cfg.TimeSeriesJobs = *series
	}
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	specs := g.GenerateSpecs()
	ds := g.BuildDataset(specs)
	if err := ds.Validate(); err != nil {
		log.Fatalf("generated dataset invalid: %v", err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	// No deferred Close: the error-checked Close below is the only exit
	// that matters (every earlier exit is log.Fatal), and a deferred
	// double-Close would discard its error (simlint deferclose).
	switch {
	case *asJSON && strings.HasSuffix(*out, ".gz"):
		err = ds.WriteJSONGZ(f)
	case *asJSON:
		err = ds.WriteJSON(f)
	case strings.HasSuffix(*out, ".gz"):
		err = ds.WriteCSVGZ(f)
	default:
		err = ds.WriteCSV(f)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d jobs (%d GPU jobs after the 30s filter, %d detailed series) to %s\n",
		len(ds.Jobs), len(ds.GPUJobs()), len(ds.Series), *out)
}
