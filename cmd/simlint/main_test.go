package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTempModule lays out a throwaway module so the driver under test
// exercises the same find-module/resolve/load path as a real invocation.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runCapture invokes run() with stdout/stderr redirected to temp files and
// returns the exit code plus both streams.
func runCapture(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	capture := func(name string) *os.File {
		f, err := os.CreateTemp(t.TempDir(), name)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	outF, errF := capture("stdout"), capture("stderr")
	defer outF.Close()
	defer errF.Close()
	code = run(args, outF, errF)
	read := func(f *os.File) string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	return code, read(outF), read(errF)
}

const dirtyMain = `package main

import "os"

func main() {
	f, err := os.Create("out.txt")
	if err != nil {
		return
	}
	defer f.Close()
	f.WriteString("hi")
}
`

func TestJSONOutputRoundTrip(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"go.mod":  "module tmpmod\n\ngo 1.22\n",
		"main.go": dirtyMain,
	})
	t.Chdir(dir)

	code, stdout, stderr := runCapture(t, []string{"-json", "-only", "deferclose", "./..."})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr: %s", code, stderr)
	}

	var findings []jsonFinding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "deferclose" || f.File != "main.go" || f.Line == 0 || f.Col == 0 {
		t.Errorf("unexpected finding: %+v", f)
	}
	if !strings.Contains(f.Message, "discards the error") {
		t.Errorf("message lost in encoding: %q", f.Message)
	}

	// Round-trip: re-encoding the decoded findings must reproduce stdout
	// byte for byte, so consumers can parse, filter, and re-emit.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		t.Fatal(err)
	}
	if buf.String() != stdout {
		t.Errorf("round-trip mismatch:\ngot:  %q\nfrom: %q", buf.String(), stdout)
	}

	// The human-readable mode must agree on the same finding.
	code, stdout, _ = runCapture(t, []string{"-only", "deferclose", "./..."})
	if code != 1 {
		t.Fatalf("plain mode exit code = %d, want 1", code)
	}
	want := "main.go:" // module-relative prefix
	if !strings.HasPrefix(stdout, want) || !strings.Contains(stdout, "[deferclose]") {
		t.Errorf("plain output does not match the JSON finding: %q", stdout)
	}
}

func TestJSONOutputClean(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"main.go": `package main

func main() {}
`,
	})
	t.Chdir(dir)

	code, stdout, stderr := runCapture(t, []string{"-json", "./..."})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr)
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("clean stdout is not valid JSON: %v\n%s", err, stdout)
	}
	if len(findings) != 0 {
		t.Errorf("clean module must produce an empty array, got %v", findings)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean output must be the empty array literal, got %q", stdout)
	}
}
