// Command simlint is the project's static-analysis gate: a multichecker
// assembling the determinism/correctness analyzers in internal/lint (see
// that package's doc for the invariant each one guards) over the module
// tree. `make lint` runs it after go vet; `make check` therefore fails on
// the first finding.
//
// Usage:
//
//	simlint [-only a,b] [-skip a,b] [-list] [-json] [packages...]
//
// Package arguments are module-relative directories ("./internal/slurm") or
// "..."-suffixed subtrees; with none given the whole module is checked.
// Exit status is 1 when findings remain after //lint:allow filtering, 2 on
// usage or load errors.
//
// -json replaces the human-readable lines with a single JSON array of
// findings on stdout — `[{"file","line","col","analyzer","message"}, …]`,
// `[]` when clean — for editor and CI integration. Exit codes are
// unchanged, so `simlint -json ./... || collect` still gates.
//
// Suppress a finding by putting, on the flagged line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory, the analyzer name must exist, and a suppression
// matching no finding is itself reported — allow-comments cannot rot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/lint"
)

// jsonFinding is the machine-readable form of one diagnostic. File is
// module-relative with forward slashes so output is stable across hosts.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzers to run (default: all default-enabled)")
	skip := fs.String("skip", "", "comma-separated analyzers to disable")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			def := " "
			if a.Default {
				def = "*"
			}
			fmt.Fprintf(stdout, "%s %-12s %s\n", def, a.Name, a.Doc)
		}
		fmt.Fprintln(stdout, "(* = runs by default)")
		return 0
	}

	analyzers, err := lint.Select(*only, *skip)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(stderr, "simlint: no analyzers selected")
		return 2
	}

	modRoot, modPath, err := findModule()
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	paths, err := resolvePatterns(fs.Args(), modRoot, modPath)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}

	loader := lint.NewLoader(modRoot, modPath)
	known := lint.KnownNames()
	findings := []jsonFinding{}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
		diags, err := lint.Run(pkg, analyzers, known)
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			rel, relErr := filepath.Rel(modRoot, pos.Filename)
			if relErr != nil {
				rel = pos.Filename
			}
			f := jsonFinding{
				File:     filepath.ToSlash(rel),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
			findings = append(findings, f)
			if !*asJSON {
				fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findModule walks up from the working directory to the enclosing go.mod
// and returns its directory and module path.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			m := moduleRe.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
			}
			return dir, string(m[1]), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// resolvePatterns expands the command-line package patterns to import
// paths. No arguments (or "./...") means the whole module.
func resolvePatterns(args []string, modRoot, modPath string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	all, err := lint.ModulePackages(modRoot, modPath)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		tree := strings.HasSuffix(arg, "/...")
		arg = strings.TrimSuffix(arg, "/...")
		if arg == "." || arg == "" {
			if tree {
				for _, p := range all {
					add(p)
				}
				continue
			}
			add(modPath)
			continue
		}
		rel := filepath.ToSlash(filepath.Clean(arg))
		rel = strings.TrimPrefix(rel, "./")
		want := modPath + "/" + rel
		matched := false
		for _, p := range all {
			if p == want || (tree && strings.HasPrefix(p, want+"/")) {
				add(p)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", arg)
		}
	}
	return out, nil
}
