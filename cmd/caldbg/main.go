// Command caldbg prints headline calibration statistics of a generated
// population for several seeds, the tuning aid used while matching the
// paper's published marginals.
package main

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	for _, seed := range []uint64{1, 7, 13, 99} {
		cfg := workload.ScaledConfig(0.15)
		cfg.Seed = seed
		g, err := workload.NewGenerator(cfg)
		if err != nil {
			panic(err)
		}
		specs := g.GenerateSpecs()
		ds := g.BuildDataset(specs)
		jobs := ds.GPUJobs()
		run := trace.RunMinutes(jobs)
		sm := trace.MeanValues(jobs, metrics.SMUtil)
		pw := trace.MeanValues(jobs, metrics.Power)
		q := stats.Quantiles(run, 0.25, 0.5, 0.75)
		fmt.Printf("seed=%3d gpuJobs=%6d run[%5.1f %5.1f %6.1f] smMed=%5.1f pwMed=%5.1f\n",
			seed, len(jobs), q[0], q[1], q[2], stats.Median(sm), stats.Median(pw))
	}
}
