// Command characterize regenerates every figure of the paper's evaluation
// from a trace dataset: either a freshly synthesized one (-scale/-seed) or a
// file previously written by tracegen (-in).
//
// Usage:
//
//	characterize -scale 0.2                # generate and characterize
//	characterize -in trace.json            # characterize a saved dataset
//	characterize -in trace.csv -days 125
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")
	var (
		in       = flag.String("in", "", "input dataset (.csv or .json from tracegen); empty = generate")
		days     = flag.Float64("days", 125, "observation window for CSV inputs (days)")
		scale    = flag.Float64("scale", 0.1, "population scale when generating")
		seed     = flag.Uint64("seed", 1, "generator seed when generating")
		csvDir   = flag.String("csvdir", "", "optional directory to export every figure as CSV")
		compare  = flag.Bool("compare", false, "append the paper-vs-measured comparison table")
		markdown = flag.Bool("markdown", false, "emit ONLY the markdown paper-vs-measured table (for EXPERIMENTS.md)")
	)
	flag.Parse()

	ds, err := loadOrGenerate(*in, *days, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *markdown {
		rep := core.Characterize(ds)
		if err := report.RenderMarkdownComparison(w, rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Fprintf(w, "dataset: %d jobs, %d GPU jobs (>=30s), %d users, %d detailed series\n\n",
		len(ds.Jobs), len(ds.GPUJobs()), len(ds.Users()), len(ds.Series))
	if err := report.RenderTableI(w, cluster.SupercloudConfig()); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w)
	rep := core.Characterize(ds)
	if err := report.RenderReport(w, rep); err != nil {
		log.Fatal(err)
	}
	if err := report.RenderArrivals(w, core.Arrivals(ds, 0)); err != nil {
		log.Fatal(err)
	}
	if *compare {
		fmt.Fprintln(w)
		if err := report.RenderPaperComparison(w, rep); err != nil {
			log.Fatal(err)
		}
	}
	if *csvDir != "" {
		if err := report.ExportCSVDir(*csvDir, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "figure CSVs exported to %s\n", *csvDir)
	}
}

// loadOrGenerate reads a saved dataset or synthesizes a fresh one.
func loadOrGenerate(path string, days, scale float64, seed uint64) (*trace.Dataset, error) {
	if path == "" {
		cfg := workload.ScaledConfig(scale)
		cfg.Seed = seed
		g, err := workload.NewGenerator(cfg)
		if err != nil {
			return nil, err
		}
		return g.BuildDataset(g.GenerateSpecs()), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".json.gz"):
		return trace.ReadJSONGZ(f)
	case strings.HasSuffix(path, ".json"):
		return trace.ReadJSON(f)
	case strings.HasSuffix(path, ".csv.gz"), strings.HasSuffix(path, ".gz"):
		return trace.ReadCSVGZ(f, days)
	default:
		return trace.ReadCSV(f, days)
	}
}
