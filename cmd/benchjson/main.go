// Command benchjson converts `go test -bench` output on stdin into a stable
// JSON document, optionally joining a baseline file produced by an earlier
// run to compute per-benchmark speedups. It exists so `make bench` can emit
// BENCH_PR2.json — the machine-readable record of the scheduler-scaling
// claim — without depending on external benchstat tooling.
//
// Usage:
//
//	go test -bench 'Benchmark(Schedule|Simulate|Replicate)' -benchmem -run '^$' . \
//	    | benchjson -baseline bench/baseline_pr2.json -label post-index > BENCH_PR2.json
//
// The output schema (one object):
//
//	{
//	  "label":      "post-index",            // -label, free-form run tag
//	  "go_max_procs": 1,
//	  "benchmarks": [{
//	     "name":          "BenchmarkSimulate/jobs=100k",
//	     "iterations":    1,
//	     "ns_per_op":     123456789,
//	     "bytes_per_op":  456,                // present with -benchmem
//	     "allocs_per_op": 7,
//	     "metrics":       {"jobs/s": 810000}, // custom b.ReportMetric values
//	     "baseline_ns_per_op": 987654321,     // present when -baseline matches
//	     "speedup":           8.0             // baseline / current, ns/op
//	  }]
//	}
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	Label      string      `json:"label,omitempty"`
	GoMaxProcs int         `json:"go_max_procs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	baselinePath := flag.String("baseline", "", "baseline JSON (same schema) to join for speedup columns")
	label := flag.String("label", "", "free-form run tag recorded in the output")
	flag.Parse()

	doc := Document{Label: *label, GoMaxProcs: runtime.GOMAXPROCS(0)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark lines on stdin")
	}

	if *baselinePath != "" {
		base, err := load(*baselinePath)
		if err != nil {
			log.Fatal(err)
		}
		byName := make(map[string]Benchmark, len(base.Benchmarks))
		for _, b := range base.Benchmarks {
			byName[b.Name] = b
		}
		for i := range doc.Benchmarks {
			b := &doc.Benchmarks[i]
			if prev, ok := byName[b.Name]; ok && b.NsPerOp > 0 {
				b.BaselineNsPerOp = prev.NsPerOp
				b.Speedup = prev.NsPerOp / b.NsPerOp
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}

// parseLine parses one `Benchmark...` result line: name, iteration count,
// then (value, unit) pairs. Lines that are not benchmark results are skipped.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -<procs> suffix go test appends to the name.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

func load(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var doc Document
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &doc, nil
}
