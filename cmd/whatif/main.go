// Command whatif runs the paper's opportunity studies over a synthesized
// population: the Fig. 9b power-cap sweep, the §VIII two-tier fleet
// economics, the §III/§VI GPU co-location policies, the checkpoint/restart
// planner, and the MIG packing exercise.
//
// Usage:
//
//	whatif -study powercap -scale 0.1
//	whatif -study twotier
//	whatif -study colocate
//	whatif -study checkpoint
//	whatif -study mig
//	whatif -study all
//	whatif -study powercap -reps 16 -workers 8   # replicated with CIs
//
// With -reps N > 1 each study's headline numbers are recomputed over N
// independently-seeded populations (streams split from -seed) across
// -workers goroutines, and the output becomes across-replication statistics
// with bootstrap confidence intervals. The deterministic MIG packing study
// is excluded — replication cannot add information to it.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/sharing"
	"repro/internal/slurm"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whatif: ")
	var (
		study   = flag.String("study", "all", "powercap | capping | twotier | reliability | colocate | incentive | checkpoint | mig | predict | predictsched | faultsim | all")
		scale   = flag.Float64("scale", 0.05, "population scale relative to the paper")
		seed    = flag.Uint64("seed", 1, "generator seed")
		reps    = flag.Int("reps", 1, "independently-seeded replications (>1 switches to the replicated report)")
		workers = flag.Int("workers", 0, "worker goroutines for replicated runs (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := workload.ScaledConfig(*scale)
	cfg.Seed = *seed

	if *reps > 1 {
		if err := runReplicated(*study, cfg, *reps, *workers, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	specs := gen.GenerateSpecs()
	ds := gen.BuildDataset(specs)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	studies := map[string]func(io.Writer, []workload.JobSpec, *trace.Dataset) error{
		"powercap":     runPowerCap,
		"capping":      runCapComparison,
		"predict":      runPredict,
		"incentive":    runIncentive,
		"reliability":  runReliability,
		"twotier":      runTwoTier,
		"colocate":     runColocate,
		"checkpoint":   runCheckpoint,
		"mig":          runMIG,
		"faultsim":     runFaultSim,
		"predictsched": runPredictSched,
	}
	if *study == "all" {
		for _, name := range []string{"powercap", "capping", "twotier", "reliability", "colocate", "incentive", "checkpoint", "mig", "predict", "predictsched", "faultsim"} {
			if err := studies[name](w, specs, ds); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintln(w)
		}
		return
	}
	fn, ok := studies[*study]
	if !ok {
		log.Fatalf("unknown study %q", *study)
	}
	if err := fn(w, specs, ds); err != nil {
		log.Fatal(err)
	}
}

func runPowerCap(w io.Writer, _ []workload.JobSpec, ds *trace.Dataset) error {
	res, err := sharing.PowerCapStudy(ds, gpu.V100(), 448, []float64{150, 200, 250})
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 9b: power-cap impact",
		"cap (W)", "unimpacted", "peak-impacted", "avg-impacted", "extra GPUs", "mean slowdown")
	for _, l := range res.Levels {
		t.AddRowF(l.CapWatts, report.Pct(l.UnimpactedFrac), report.Pct(l.PeakImpactedFrac),
			report.Pct(l.AvgImpactedFrac), l.ExtraGPUsSupportable, l.MeanSlowdown)
	}
	return t.Render(w)
}

func runCapComparison(w io.Writer, _ []workload.JobSpec, ds *trace.Dataset) error {
	rows, err := sharing.CompareCapping(ds, gpu.V100(), []float64{150, 200, 250})
	if err != nil {
		return err
	}
	t := report.NewTable("extension: power capping vs frequency capping (Patki et al.)",
		"target (W)", "power-cap slowdown", "power-cap hit", "freq-cap slowdown", "freq-cap hit")
	for _, r := range rows {
		t.AddRowF(r.TargetWatts, r.PowerCapMeanSlowdown, report.Pct(r.PowerCapImpactedFrac),
			r.FreqCapMeanSlowdown, report.Pct(r.FreqCapImpactedFrac))
	}
	return t.Render(w)
}

func runTwoTier(w io.Writer, _ []workload.JobSpec, ds *trace.Dataset) error {
	res, err := sharing.TwoTierStudy(ds, sharing.DefaultTierPlan())
	if err != nil {
		return err
	}
	t := report.NewTable("Sec VIII: two-tier fleet economics",
		"design", "fast GPUs", "slow GPUs", "capex (USD)", "slow-tier slowdown")
	t.AddRowF("single tier (V100 only)", res.SingleTier.FastGPUs, 0, res.SingleTier.CapexUSD, 1.0)
	t.AddRowF("two tier (V100 + T4)", res.TwoTier.FastGPUs, res.TwoTier.SlowGPUs,
		res.TwoTier.CapexUSD, res.TwoTier.MeanSlowdown)
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "capex savings: %s; slow-tier job share: %s\n",
		report.Pct(res.CapexSavingsFrac), report.Pct(res.TwoTier.SlowTierJobFrac))
	return err
}

func runColocate(w io.Writer, specs []workload.JobSpec, _ *trace.Dataset) error {
	cfg := sharing.DefaultColocationConfig()
	t := report.NewTable("Sec III/VI: GPU co-location policies",
		"policy", "pairs", "GPU hours", "saved", "mean slowdown", "max slowdown")
	for _, pol := range []sharing.ColocationPolicy{sharing.Exclusive, sharing.StaticPairing, sharing.PhaseAware} {
		rep := sharing.Colocate(specs, pol, cfg)
		t.AddRowF(pol.String(), rep.PairsFormed, rep.GPUHoursUsed,
			report.Pct(rep.SavedFrac), rep.MeanSlowdown, rep.MaxSlowdown)
	}
	ts, err := sharing.TimeSlice(specs, sharing.DefaultTimeSliceConfig())
	if err != nil {
		return err
	}
	t.AddRowF("time-slicing (Gandiva-like)", ts.GroupsFormed, ts.GPUHoursUsed,
		report.Pct(ts.SavedFrac), ts.MeanStretch, ts.MeanStretch)
	return t.Render(w)
}

func runCheckpoint(w io.Writer, _ []workload.JobSpec, ds *trace.Dataset) error {
	rep, err := sharing.CheckpointStudy(ds, sharing.DefaultCheckpointConfig())
	if err != nil {
		return err
	}
	t := report.NewTable("Sec VI: checkpoint/restart for development & IDE jobs", "quantity", "value")
	t.AddRowF("jobs covered (failed/timeout)", rep.JobsCovered)
	t.AddRowF("Young-Daly interval (s)", rep.IntervalSec)
	t.AddRowF("lost GPU hours (no ckpt)", rep.LostGPUHoursNoCkpt)
	t.AddRowF("lost GPU hours (with ckpt)", rep.LostGPUHoursWithCkpt)
	t.AddRowF("checkpoint overhead (GPUh)", rep.OverheadGPUHours)
	t.AddRowF("net GPU hours saved", rep.SavedGPUHours)
	return t.Render(w)
}

func runIncentive(w io.Writer, specs []workload.JobSpec, _ *trace.Dataset) error {
	res, err := sharing.IncentiveStudy(specs, sharing.DefaultIncentiveConfig())
	if err != nil {
		return err
	}
	t := report.NewTable("Sec VIII: coupon-based co-location incentive", "quantity", "value")
	t.AddRowF("participating users", res.Participants)
	t.AddRowF("GPU hours saved (coupon pool)", res.SavedGPUHours)
	t.AddRowF("coupons granted", res.TotalCoupons)
	t.AddRowF("self-funding", fmt.Sprint(res.Solvent))
	if err := t.Render(w); err != nil {
		return err
	}
	limit := 5
	if len(res.Ledger) < limit {
		limit = len(res.Ledger)
	}
	t2 := report.NewTable("top coupon earners", "user", "jobs shared", "slowdown hours", "coupons")
	for _, e := range res.Ledger[:limit] {
		t2.AddRowF(e.User, e.JobsShared, e.SlowdownHours, e.CouponsEarned)
	}
	return t2.Render(w)
}

func runReliability(w io.Writer, _ []workload.JobSpec, ds *trace.Dataset) error {
	plan := sharing.DefaultReliabilityPlan()
	res, err := sharing.ReliabilityStudy(ds, plan)
	if err != nil {
		return err
	}
	t := report.NewTable("Sec VIII: reduced-reliability cheap tier (with checkpointing)", "quantity", "value")
	t.AddRowF("baseline capex (USD)", res.BaselineCapexUSD)
	t.AddRowF("flaky-tier capex (USD)", res.CapexUSD)
	t.AddRowF("expected failures (window)", res.ExpectedFailures)
	t.AddRowF("lost GPU hours (checkpointed)", res.LostGPUHours)
	t.AddRowF("lost GPU hours (unprotected)", res.LostGPUHoursNoCkpt)
	t.AddRowF("net savings (USD)", res.NetSavingsUSD)
	t.AddRowF("worthwhile", fmt.Sprint(res.Worthwhile))
	return t.Render(w)
}

func runPredict(w io.Writer, _ []workload.JobSpec, ds *trace.Dataset) error {
	t := report.NewTable("Sec IV: lightweight user-behavior prediction (online replay)",
		"target", "predictor", "n", "MAE", "MedAPE", "RMSLE")
	for _, target := range []predict.Target{predict.TargetRunMinutes, predict.TargetMeanSM} {
		scores, err := predict.Evaluate(ds, target, predict.StandardPredictors())
		if err != nil {
			return err
		}
		for _, s := range scores {
			t.AddRowF(s.Target, s.Predictor, s.N, s.MAE, s.MedAPE, s.RMSLE)
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "per-user state buys little: users are individually unpredictable (Fig 11/12).")
	return err
}

func runMIG(w io.Writer, _ []workload.JobSpec, _ *trace.Dataset) error {
	// Pack a representative slice-demand mix onto one A100 and show the
	// reset friction §VIII describes.
	part, err := gpu.NewMIGPartitioner(gpu.A100())
	if err != nil {
		return err
	}
	layout, err := gpu.PackLayout(gpu.A100(), []int{3, 2, 1, 1})
	if err != nil {
		return err
	}
	cost, err := part.Repartition(layout)
	if err != nil {
		return err
	}
	t := report.NewTable("Sec VIII: MIG packing on one A100", "slice", "compute", "memory (GB)")
	for _, pr := range layout {
		t.AddRowF(pr.Name, pr.ComputeSlices, pr.MemoryGB)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "repartition cost: %.0fs (device must be idle; %d resets so far)\n",
		cost, part.Resets())
	return err
}

// runFaultSim cross-checks the DES fault machinery against §VIII's analytic
// reliability model: the same population is run through the scheduler with a
// per-GPU fatal-error process at each MTBF, and the simulated lost work is
// compared with sharing.ReliabilityStudy's closed-form estimate. The analytic
// model is first-order in the per-job failure exposure, so the comparison
// population is capped at 10 exposure GPU-hours per job — the same short
// exploratory/development work §VIII routes to the flaky tier.
func runFaultSim(w io.Writer, specs []workload.JobSpec, ds *trace.Dataset) error {
	const maxExposure = 10.0 // GPU-hours; keeps the analytic model in regime
	allCats := []trace.Category{trace.Mature, trace.Exploratory, trace.Development, trace.IDE}
	v100 := gpu.V100()

	base := slurm.DefaultConfig()
	kept := make([]workload.JobSpec, 0, len(specs))
	for _, sp := range specs {
		if float64(sp.NumGPUs)*sp.RunSec/3600 <= maxExposure {
			kept = append(kept, sp)
		}
	}
	kept, _ = slurm.Feasible(base, kept)
	ids := make(map[int64]bool, len(kept))
	for _, sp := range kept {
		ids[sp.ID] = true
	}
	sub := trace.NewDataset(ds.DurationDays)
	for _, j := range ds.Jobs {
		if ids[j.JobID] {
			sub.Add(j)
		}
	}

	t := report.NewTable("extension: DES fault injection vs analytic reliability model (jobs <= 10 exposure GPUh)",
		"GPU MTBF (h)", "sim lost (GPUh)", "analytic lost (GPUh)", "ratio", "fatals", "requeues", "goodput")
	for _, mtbf := range []float64{250, 500, 1000} {
		cfg := base
		cfg.Faults = faults.Plan{GPUFatalMTBFHours: mtbf}
		cfg.FaultSeed = 7
		// Effectively unbounded retries with a negligible hold: every job
		// completes, matching the analytic model's eventual-completion
		// assumption.
		cfg.Requeue = slurm.RequeuePolicy{MaxRetries: 1 << 20, HoldSec: 1, HoldBackoff: 1}
		res, st, err := slurm.Simulate(cfg, kept)
		if err != nil {
			return err
		}
		var simLost float64
		for i := range kept {
			sp := &kept[i]
			if sp.NumGPUs == 0 || sp.RunSec < trace.MinGPUJobRunSec {
				continue
			}
			if r := res[sp.ID]; r != nil {
				simLost += float64(sp.NumGPUs) * r.LostSec / 3600
			}
		}
		rel, err := sharing.ReliabilityStudy(sub, sharing.ReliabilityPlan{
			Tiering: sharing.TierPlan{
				Fast:                v100,
				Slow:                v100, // slowdown 1: isolate the failure model
				SlowTierCategories:  allCats,
				UtilizationHeadroom: 0.25,
			},
			SlowTierMTBFHours: mtbf,
		})
		if err != nil {
			return err
		}
		ratio := 0.0
		if rel.LostGPUHours > 0 {
			ratio = simLost / rel.LostGPUHours
		}
		t.AddRowF(mtbf, simLost, rel.LostGPUHours, ratio, st.GPUFatals, st.Requeues,
			report.Pct(st.GoodputFraction()))
	}
	return t.Render(w)
}

// runPredictSched compares requested-limit vs prediction-aware backfill on
// per-lifecycle-class wait CDFs (the ISSUE 7 study): the engine schedules
// the shared population under the full policy ladder — conservative fence,
// §IV requested-limit baseline, forecaster, and the mispredict-robustness
// sweep — then prints the class-median/p90 waits, the scheduler's
// prediction counters, and the accuracy-vs-prefix-length curves.
func runPredictSched(w io.Writer, specs []workload.JobSpec, _ *trace.Dataset) error {
	plan := engine.DefaultPredictSchedPlan(0, 7)
	res, err := engine.RunPredictSched(context.Background(), plan, specs)
	if err != nil {
		return err
	}
	// The grid is fixed; locate the median and p90 columns once.
	p50i, p90i := 0, 0
	for i, p := range engine.WaitQuantilePs {
		if p == 0.50 {
			p50i = i
		}
		if p == 0.90 {
			p90i = i
		}
	}
	pt := report.NewTable("extension: prediction-aware backfill policy ladder",
		"policy", "completed", "mean wait (s)", "pred backfills", "hits", "misses", "MAE (s)")
	for _, pol := range res.Policies {
		scored := pol.Stats.PredictHits + pol.Stats.PredictMisses
		mae := 0.0
		if scored > 0 {
			mae = pol.Stats.PredictAbsErrSec / float64(scored)
		}
		pt.AddRowF(pol.Name, pol.Stats.Completed, pol.MeanWaitSec,
			pol.Stats.PredictedBackfills, pol.Stats.PredictHits, pol.Stats.PredictMisses, mae)
	}
	if err := pt.Render(w); err != nil {
		return err
	}
	ct := report.NewTable("per-lifecycle-class queue waits (median / p90 seconds)",
		"policy", "class", "jobs", "p50", "p90")
	for _, pol := range res.Policies {
		for _, cw := range pol.ClassWaits {
			if cw.Jobs == 0 {
				continue
			}
			ct.AddRowF(pol.Name, cw.Category, cw.Jobs, cw.QuantileSec[p50i], cw.QuantileSec[p90i])
		}
	}
	if err := ct.Render(w); err != nil {
		return err
	}
	at := report.NewTable("online prediction accuracy vs prefix length",
		"prefix samples", "decided", "class accuracy", "forecasts", "runtime MAE (s)")
	for _, pt := range res.Accuracy {
		at.AddRowF(pt.PrefixSamples, pt.Decided, report.Pct(pt.Accuracy), pt.Forecasts, pt.RuntimeMAESec)
	}
	if err := at.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "predicted runtimes unlock the backfill the requested limits forbid (Sec IV implication).")
	return err
}

// extractor pulls one study's headline scalar metrics from a replication's
// population, prefixing each metric with the study name so -study all can
// merge every extractor into one sample.
type extractor func(specs []workload.JobSpec, ds *trace.Dataset, sample engine.Sample) error

// replicatedStudies maps study names onto metric extractors. The MIG study
// is absent on purpose: its packing exercise is deterministic, so
// replication cannot add information to it.
var replicatedStudies = map[string]extractor{
	"powercap": func(_ []workload.JobSpec, ds *trace.Dataset, sm engine.Sample) error {
		res, err := sharing.PowerCapStudy(ds, gpu.V100(), 448, []float64{150, 200, 250})
		if err != nil {
			return err
		}
		for _, l := range res.Levels {
			p := fmt.Sprintf("powercap_%.0fw_", l.CapWatts)
			sm[p+"unimpacted_frac"] = l.UnimpactedFrac
			sm[p+"avg_impacted_frac"] = l.AvgImpactedFrac
			sm[p+"mean_slowdown"] = l.MeanSlowdown
			sm[p+"extra_gpus"] = float64(l.ExtraGPUsSupportable)
		}
		return nil
	},
	"capping": func(_ []workload.JobSpec, ds *trace.Dataset, sm engine.Sample) error {
		rows, err := sharing.CompareCapping(ds, gpu.V100(), []float64{150})
		if err != nil {
			return err
		}
		sm["capping_150w_power_slowdown"] = rows[0].PowerCapMeanSlowdown
		sm["capping_150w_freq_slowdown"] = rows[0].FreqCapMeanSlowdown
		sm["capping_150w_power_hit_frac"] = rows[0].PowerCapImpactedFrac
		sm["capping_150w_freq_hit_frac"] = rows[0].FreqCapImpactedFrac
		return nil
	},
	"twotier": func(_ []workload.JobSpec, ds *trace.Dataset, sm engine.Sample) error {
		res, err := sharing.TwoTierStudy(ds, sharing.DefaultTierPlan())
		if err != nil {
			return err
		}
		sm["twotier_capex_savings_frac"] = res.CapexSavingsFrac
		sm["twotier_slow_job_frac"] = res.TwoTier.SlowTierJobFrac
		sm["twotier_slow_slowdown"] = res.TwoTier.MeanSlowdown
		return nil
	},
	"reliability": func(_ []workload.JobSpec, ds *trace.Dataset, sm engine.Sample) error {
		res, err := sharing.ReliabilityStudy(ds, sharing.DefaultReliabilityPlan())
		if err != nil {
			return err
		}
		sm["reliability_net_savings_usd"] = res.NetSavingsUSD
		sm["reliability_lost_gpu_hours"] = res.LostGPUHours
		sm["reliability_worthwhile"] = boolMetric(res.Worthwhile)
		return nil
	},
	"colocate": func(specs []workload.JobSpec, _ *trace.Dataset, sm engine.Sample) error {
		cfg := sharing.DefaultColocationConfig()
		for _, pol := range []sharing.ColocationPolicy{sharing.StaticPairing, sharing.PhaseAware} {
			rep := sharing.Colocate(specs, pol, cfg)
			p := "colocate_" + pol.String() + "_"
			sm[p+"saved_frac"] = rep.SavedFrac
			sm[p+"mean_slowdown"] = rep.MeanSlowdown
			sm[p+"pairs"] = float64(rep.PairsFormed)
		}
		ts, err := sharing.TimeSlice(specs, sharing.DefaultTimeSliceConfig())
		if err != nil {
			return err
		}
		sm["colocate_timeslice_saved_frac"] = ts.SavedFrac
		sm["colocate_timeslice_mean_stretch"] = ts.MeanStretch
		return nil
	},
	"incentive": func(specs []workload.JobSpec, _ *trace.Dataset, sm engine.Sample) error {
		res, err := sharing.IncentiveStudy(specs, sharing.DefaultIncentiveConfig())
		if err != nil {
			return err
		}
		sm["incentive_participants"] = float64(res.Participants)
		sm["incentive_saved_gpu_hours"] = res.SavedGPUHours
		sm["incentive_solvent"] = boolMetric(res.Solvent)
		return nil
	},
	"checkpoint": func(_ []workload.JobSpec, ds *trace.Dataset, sm engine.Sample) error {
		rep, err := sharing.CheckpointStudy(ds, sharing.DefaultCheckpointConfig())
		if err != nil {
			return err
		}
		sm["checkpoint_jobs_covered"] = float64(rep.JobsCovered)
		sm["checkpoint_interval_s"] = rep.IntervalSec
		sm["checkpoint_saved_gpu_hours"] = rep.SavedGPUHours
		return nil
	},
	"predict": func(_ []workload.JobSpec, ds *trace.Dataset, sm engine.Sample) error {
		scores, err := predict.Evaluate(ds, predict.TargetRunMinutes, predict.StandardPredictors())
		if err != nil {
			return err
		}
		for _, s := range scores {
			switch s.Predictor {
			case "global-median":
				sm["predict_runtime_global_medape"] = s.MedAPE
			case "per-user-median(8)":
				sm["predict_runtime_peruser_medape"] = s.MedAPE
			}
		}
		return nil
	},
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// runReplicated recomputes the selected studies' headline metrics over
// independently-seeded populations and prints across-replication statistics.
func runReplicated(study string, cfg workload.Config, reps, workers int, seed uint64) error {
	var names []string
	if study == "all" {
		names = []string{"powercap", "capping", "twotier", "reliability", "colocate", "incentive", "checkpoint", "predict"}
	} else if _, ok := replicatedStudies[study]; ok {
		names = []string{study}
	} else if study == "mig" {
		return fmt.Errorf("the MIG study is deterministic; replication adds nothing (drop -reps)")
	} else if study == "faultsim" {
		return fmt.Errorf("the faultsim study runs its own DES sweep; rerun with -reps 1 (vary -seed for independent draws)")
	} else if study == "predictsched" {
		return fmt.Errorf("the predictsched study runs its own DES policy ladder; rerun with -reps 1 (vary -seed for independent draws)")
	} else {
		return fmt.Errorf("unknown or non-replicable study %q", study)
	}

	fn := func(ctx context.Context, rep int, repSeed uint64) (engine.Sample, error) {
		gcfg := cfg
		gcfg.Seed = repSeed
		gen, err := workload.NewGenerator(gcfg)
		if err != nil {
			return nil, err
		}
		specs := gen.GenerateSpecs()
		ds := gen.BuildDataset(specs)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sm := engine.Sample{}
		for _, name := range names {
			if err := replicatedStudies[name](specs, ds, sm); err != nil {
				return nil, fmt.Errorf("study %s: %w", name, err)
			}
		}
		return sm, nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	batch, err := engine.Run(ctx, engine.Config{RootSeed: seed, Reps: reps, Workers: workers}, fn)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	return report.ReplicationSummary(w, fmt.Sprintf("replicated studies: %s", study), batch)
}
