// Durability benchmarks (PR 9): what does crash safety cost on the ingest
// path? BenchmarkDurableIngest feeds pre-encoded JSON batches through
// durable.Store.IngestBatch under three policies — wal=off (decode + apply
// only: the price of the durable plumbing with the log disabled-in-spirit,
// i.e. async, never-synced appends), wal=sync (fsync on every append: the
// crash-safe production default), and a mem baseline (decode + raw SegStore
// append, no WAL, no ledger). The acceptance bar is wal=off within 1.5x of
// mem; wal=sync reports absolute numbers — it is priced by the disk, not
// the code. `make bench-pr9` joins the re-run streaming rows against
// bench/baseline_pr8.json (regression guard) and emits BENCH_PR9.json.
package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/durable"
	"repro/internal/trace"
)

// durableBatches pre-encodes ds into ingest-format JSON bodies of batch
// jobs each, outside the timed region.
func durableBatches(b *testing.B, ds *trace.Dataset, batch int) [][]byte {
	b.Helper()
	var bodies [][]byte
	for lo := 0; lo < len(ds.Jobs); lo += batch {
		hi := lo + batch
		if hi > len(ds.Jobs) {
			hi = len(ds.Jobs)
		}
		part := &trace.Dataset{Jobs: ds.Jobs[lo:hi], Series: map[int64]*trace.TimeSeries{}, DurationDays: ds.DurationDays}
		var buf bytes.Buffer
		if err := part.WriteJSON(&buf); err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, buf.Bytes())
	}
	return bodies
}

func BenchmarkDurableIngest(b *testing.B) {
	for _, sz := range streamSizes {
		ds := charDataset(b, sz.jobs)
		bodies := durableBatches(b, ds, streamBatch)
		cfg := trace.SegConfig{DurationDays: ds.DurationDays}

		for _, mode := range []struct {
			name string
			sync bool
		}{{"wal=off", false}, {"wal=sync", true}} {
			b.Run(fmt.Sprintf("%s/%s", mode.name, sz.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					dir := b.TempDir()
					b.StartTimer()
					st, err := durable.Open(dir, cfg, durable.Options{Sync: mode.sync})
					if err != nil {
						b.Fatal(err)
					}
					for k, body := range bodies {
						if _, _, err := st.IngestBatch(fmt.Sprintf("b%d", k), body); err != nil {
							b.Fatal(err)
						}
					}
					// Flush-close without the final checkpoint: the shutdown
					// snapshot is drain cost, not ingest cost.
					if err := st.CloseNoSnapshot(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(ds.Jobs))/(b.Elapsed().Seconds()/float64(b.N)), "jobs/s")
			})
		}

		// mem: the same decode+apply work with no durability at all — the
		// denominator of the overhead ratio.
		b.Run(fmt.Sprintf("mem/%s", sz.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := trace.NewSegStore(cfg)
				for _, body := range bodies {
					part, err := trace.ReadJSON(bytes.NewReader(body))
					if err != nil {
						b.Fatal(err)
					}
					st.AppendDataset(part)
				}
			}
			b.ReportMetric(float64(len(ds.Jobs))/(b.Elapsed().Seconds()/float64(b.N)), "jobs/s")
		})
	}
}

// BenchmarkDurableRecover times Open on a data dir left behind by the
// wal=sync run shape: how long a crashed server takes to come back. Sweeps
// snapshot cadence — recovery from a fresh snapshot vs. a pure WAL replay.
func BenchmarkDurableRecover(b *testing.B) {
	ds := charDataset(b, 10_000)
	bodies := durableBatches(b, ds, streamBatch)
	cfg := trace.SegConfig{DurationDays: ds.DurationDays}

	for _, cad := range []struct {
		name     string
		snapshot bool
	}{{"replay=wal", false}, {"replay=snapshot", true}} {
		b.Run(cad.name, func(b *testing.B) {
			dir := b.TempDir()
			st, err := durable.Open(dir, cfg, durable.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for k, body := range bodies {
				if _, _, err := st.IngestBatch(fmt.Sprintf("b%d", k), body); err != nil {
					b.Fatal(err)
				}
			}
			if cad.snapshot {
				if err := st.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
			// Simulate a crash: close the log with no final checkpoint, so
			// replay=wal pays the full log and replay=snapshot loads the
			// checkpoint with an empty suffix.
			if err := st.CloseNoSnapshot(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st2, err := durable.Open(dir, cfg, durable.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if st2.Seg().Len() != len(ds.Jobs) {
					b.Fatalf("recovered %d jobs, want %d", st2.Seg().Len(), len(ds.Jobs))
				}
				if err := st2.CloseNoSnapshot(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
