// Scheduler-scaling benchmarks (PR 2): Benchmark{Schedule,Simulate,Replicate}
// time the discrete-event hot path at 10k/100k/500k-job scale. `make bench`
// runs exactly this trio and emits BENCH_PR2.json (via cmd/benchjson) with a
// speedup column against the committed pre-index baseline, so the free-
// capacity index and the incremental schedule() loop carry a measured claim
// rather than an asserted one.
package repro

import (
	"context"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/slurm"
	"repro/internal/workload"
)

// paperJobs is the paper's full population; benchmark scales are expressed
// as absolute job counts and mapped back to generator scale factors.
const paperJobs = 74820

// schedSizes are the population sizes the PR2 benchmarks sweep.
var schedSizes = []struct {
	name string
	jobs int
}{
	{"jobs=10k", 10_000},
	{"jobs=100k", 100_000},
	{"jobs=500k", 500_000},
}

// schedPop is one cached benchmark population: the feasible paper-shaped
// arrival stream for a proportionally scaled cluster, plus a 4x-compressed
// variant that keeps a deep queue on a half-size cluster (the regime where
// the policy loop, not the event heap, dominates).
type schedPop struct {
	nodes          int
	specs          []workload.JobSpec
	contendedNodes int
	contended      []workload.JobSpec
}

var schedPopCache sync.Map // jobs -> *schedPop

func schedPopulation(b *testing.B, jobs int) *schedPop {
	b.Helper()
	if v, ok := schedPopCache.Load(jobs); ok {
		return v.(*schedPop)
	}
	factor := float64(jobs) / paperJobs
	gcfg := workload.ScaledConfig(factor)
	gcfg.TotalJobs = jobs
	gcfg.Seed = 7
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	raw := gen.GenerateSpecs()

	p := &schedPop{nodes: scaledNodes(factor, 4)}
	cfg := slurm.DefaultConfig()
	cfg.Cluster.Nodes = p.nodes
	p.specs, _ = slurm.Feasible(cfg, raw)

	// Contended variant: arrivals compressed 4x onto half the nodes, so the
	// pending queue stays deep and schedule() passes dominate the run.
	p.contendedNodes = scaledNodes(factor/2, 2)
	ccfg := slurm.DefaultConfig()
	ccfg.Cluster.Nodes = p.contendedNodes
	dense := make([]workload.JobSpec, len(raw))
	copy(dense, raw)
	for i := range dense {
		dense[i].SubmitSec *= 0.25
	}
	p.contended, _ = slurm.Feasible(ccfg, dense)

	schedPopCache.Store(jobs, p)
	return p
}

// scaledNodes scales the 224-node machine with the workload.
func scaledNodes(factor float64, min int) int {
	n := int(224*factor + 0.5)
	if n < min {
		n = min
	}
	return n
}

// BenchmarkSimulate times slurm.Simulate on the paper-shaped arrival stream:
// the end-to-end discrete-event run (event heap, policy loop, allocation,
// release) at each population size. This is the benchmark the PR2 acceptance
// criterion reads: ≥3x over the pre-index baseline at jobs=100k.
func BenchmarkSimulate(b *testing.B) {
	for _, sz := range schedSizes {
		b.Run(sz.name, func(b *testing.B) {
			p := schedPopulation(b, sz.jobs)
			cfg := slurm.DefaultConfig()
			cfg.Cluster.Nodes = p.nodes
			b.ResetTimer()
			var st slurm.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = slurm.Simulate(cfg, p.specs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Completed)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			b.ReportMetric(float64(st.MaxQueueLen), "max-queue")
		})
	}
}

// BenchmarkSimulateFaults times the same end-to-end run with the full fault
// machinery live (node crashes, drains, per-GPU fatals, requeue/backoff), so
// the cost of failure-aware scheduling is a measured number. There is no
// pre-fault baseline for this name; `make bench-fault` reports it alongside
// the empty-plan guard.
func BenchmarkSimulateFaults(b *testing.B) {
	for _, sz := range schedSizes {
		b.Run(sz.name, func(b *testing.B) {
			p := schedPopulation(b, sz.jobs)
			cfg := slurm.DefaultConfig()
			cfg.Cluster.Nodes = p.nodes
			cfg.Faults = faults.Plan{
				NodeCrashMTBFHours: 720,
				NodeDrainMTBFHours: 1440,
				MeanRepairHours:    2,
				GPUFatalMTBFHours:  2000,
			}
			cfg.FaultSeed = 7
			cfg.Requeue = slurm.DefaultRequeuePolicy()
			b.ResetTimer()
			var st slurm.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = slurm.Simulate(cfg, p.specs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Completed)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			b.ReportMetric(float64(st.GPUFatals+st.NodeCrashes+st.NodeDrains), "faults")
		})
	}
}

// BenchmarkSchedule isolates the scheduler under queue pressure: the same
// population with arrivals compressed 4x onto a half-size cluster, so every
// event triggers a pass over a deep pending queue. Speedups here come from
// the incremental schedule() loop (persistent priority order, blocked-verdict
// cache) more than from the allocation index.
func BenchmarkSchedule(b *testing.B) {
	for _, sz := range schedSizes {
		b.Run(sz.name, func(b *testing.B) {
			p := schedPopulation(b, sz.jobs)
			cfg := slurm.DefaultConfig()
			cfg.Cluster.Nodes = p.contendedNodes
			b.ResetTimer()
			var st slurm.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = slurm.Simulate(cfg, p.contended)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Completed)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			b.ReportMetric(float64(st.MaxQueueLen), "max-queue")
		})
	}
}

// BenchmarkReplicate times the replication engine fanning four seeded
// generate→schedule→characterize pipelines, the workload the ROADMAP's
// what-if sweeps put on the simulator. 500k is omitted: replication cost is
// generation-dominated there and the 100k point already covers the claim.
func BenchmarkReplicate(b *testing.B) {
	for _, sz := range schedSizes {
		if sz.jobs > 100_000 {
			continue
		}
		sz := sz
		b.Run(sz.name, func(b *testing.B) {
			factor := float64(sz.jobs) / paperJobs
			gcfg := workload.ScaledConfig(factor)
			gcfg.TotalJobs = sz.jobs
			scfg := slurm.DefaultConfig()
			scfg.Cluster.Nodes = scaledNodes(factor, 4)
			exp := engine.Experiment{Gen: gcfg, Sim: scfg}
			const reps = 4
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch, err := engine.Run(context.Background(),
					engine.Config{RootSeed: 7, Reps: reps}, exp.Replicator())
				if err != nil {
					b.Fatal(err)
				}
				if got := batch.Completed(); got != reps {
					b.Fatalf("completed %d of %d: %v", got, reps, batch.FirstErr())
				}
			}
			b.ReportMetric(float64(reps)*float64(b.N)/b.Elapsed().Seconds(), "reps/s")
		})
	}
}
