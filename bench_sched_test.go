// Scheduler-scaling benchmarks (PR 2): Benchmark{Schedule,Simulate,Replicate}
// time the discrete-event hot path at 10k/100k/500k-job scale. `make bench`
// runs exactly this trio and emits BENCH_PR2.json (via cmd/benchjson) with a
// speedup column against the committed pre-index baseline, so the free-
// capacity index and the incremental schedule() loop carry a measured claim
// rather than an asserted one.
package repro

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/slurm"
	"repro/internal/workload"
)

// paperJobs is the paper's full population; benchmark scales are expressed
// as absolute job counts and mapped back to generator scale factors.
const paperJobs = 74820

// schedSizes are the population sizes the PR2 benchmarks sweep.
var schedSizes = []struct {
	name string
	jobs int
}{
	{"jobs=10k", 10_000},
	{"jobs=100k", 100_000},
	{"jobs=500k", 500_000},
}

// schedPop is one cached benchmark population: the feasible paper-shaped
// arrival stream for a proportionally scaled cluster, plus a 4x-compressed
// variant that keeps a deep queue on a half-size cluster (the regime where
// the policy loop, not the event heap, dominates).
type schedPop struct {
	nodes          int
	specs          []workload.JobSpec
	contendedNodes int
	contended      []workload.JobSpec
}

var schedPopCache sync.Map // jobs -> *schedPop

func schedPopulation(b *testing.B, jobs int) *schedPop {
	b.Helper()
	if v, ok := schedPopCache.Load(jobs); ok {
		return v.(*schedPop)
	}
	factor := float64(jobs) / paperJobs
	gcfg := workload.ScaledConfig(factor)
	gcfg.TotalJobs = jobs
	gcfg.Seed = 7
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	raw := gen.GenerateSpecs()

	p := &schedPop{nodes: scaledNodes(factor, 4)}
	cfg := slurm.DefaultConfig()
	cfg.Cluster.Nodes = p.nodes
	p.specs, _ = slurm.Feasible(cfg, raw)

	// Contended variant: arrivals compressed 4x onto half the nodes, so the
	// pending queue stays deep and schedule() passes dominate the run.
	p.contendedNodes = scaledNodes(factor/2, 2)
	ccfg := slurm.DefaultConfig()
	ccfg.Cluster.Nodes = p.contendedNodes
	dense := make([]workload.JobSpec, len(raw))
	copy(dense, raw)
	for i := range dense {
		dense[i].SubmitSec *= 0.25
	}
	p.contended, _ = slurm.Feasible(ccfg, dense)

	schedPopCache.Store(jobs, p)
	return p
}

// settleHeap forces a collection between population setup and the timed
// region. Building (and caching) a multi-hundred-MB population leaves the
// pacer with a swollen heap goal and unpaid assist debt; without this the
// first timed run after a build can pay several multiples of its real cost
// in GC assists, which made combined `make bench-pr6` runs report 3-4x the
// isolated-run time for the same benchmark.
func settleHeap(b *testing.B) {
	b.Helper()
	runtime.GC()
	b.ResetTimer()
}

// scaledNodes scales the 224-node machine with the workload.
func scaledNodes(factor float64, min int) int {
	n := int(224*factor + 0.5)
	if n < min {
		n = min
	}
	return n
}

// BenchmarkSimulate times slurm.Simulate on the paper-shaped arrival stream:
// the end-to-end discrete-event run (event heap, policy loop, allocation,
// release) at each population size. This is the benchmark the PR2 acceptance
// criterion reads: ≥3x over the pre-index baseline at jobs=100k.
func BenchmarkSimulate(b *testing.B) {
	for _, sz := range schedSizes {
		b.Run(sz.name, func(b *testing.B) {
			p := schedPopulation(b, sz.jobs)
			cfg := slurm.DefaultConfig()
			cfg.Cluster.Nodes = p.nodes
			settleHeap(b)
			var st slurm.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = slurm.Simulate(cfg, p.specs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Completed)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			b.ReportMetric(float64(st.MaxQueueLen), "max-queue")
		})
	}
}

// BenchmarkSimulateFaults times the same end-to-end run with the full fault
// machinery live (node crashes, drains, per-GPU fatals, requeue/backoff), so
// the cost of failure-aware scheduling is a measured number. There is no
// pre-fault baseline for this name; `make bench-fault` reports it alongside
// the empty-plan guard.
func BenchmarkSimulateFaults(b *testing.B) {
	for _, sz := range schedSizes {
		b.Run(sz.name, func(b *testing.B) {
			p := schedPopulation(b, sz.jobs)
			cfg := slurm.DefaultConfig()
			cfg.Cluster.Nodes = p.nodes
			cfg.Faults = faults.Plan{
				NodeCrashMTBFHours: 720,
				NodeDrainMTBFHours: 1440,
				MeanRepairHours:    2,
				GPUFatalMTBFHours:  2000,
			}
			cfg.FaultSeed = 7
			cfg.Requeue = slurm.DefaultRequeuePolicy()
			settleHeap(b)
			var st slurm.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = slurm.Simulate(cfg, p.specs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Completed)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			b.ReportMetric(float64(st.GPUFatals+st.NodeCrashes+st.NodeDrains), "faults")
		})
	}
}

// BenchmarkSchedule isolates the scheduler under queue pressure: the same
// population with arrivals compressed 4x onto a half-size cluster, so every
// event triggers a pass over a deep pending queue. Speedups here come from
// the incremental schedule() loop (persistent priority order, blocked-verdict
// cache) more than from the allocation index.
func BenchmarkSchedule(b *testing.B) {
	for _, sz := range schedSizes {
		b.Run(sz.name, func(b *testing.B) {
			p := schedPopulation(b, sz.jobs)
			cfg := slurm.DefaultConfig()
			cfg.Cluster.Nodes = p.contendedNodes
			settleHeap(b)
			var st slurm.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = slurm.Simulate(cfg, p.contended)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Completed)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			b.ReportMetric(float64(st.MaxQueueLen), "max-queue")
		})
	}
}

// BenchmarkPredictSched prices prediction-aware backfill (PR 7) on the
// contended population, where every scheduling pass walks a deep pending
// queue and the predictor's estimate/shadow/refinement state is exercised on
// every reservation. Compare against BenchmarkSchedule in the same run: that
// benchmark is the conservative fence on identical inputs, so the delta IS
// the prediction overhead. `make bench-pr7` also reruns the PR 2 trio, whose
// unchanged numbers guard the disabled path (nil predictor, zero overhead).
func BenchmarkPredictSched(b *testing.B) {
	for _, sz := range schedSizes {
		b.Run(sz.name, func(b *testing.B) {
			p := schedPopulation(b, sz.jobs)
			cfg := slurm.DefaultConfig()
			cfg.Cluster.Nodes = p.contendedNodes
			cfg.Policy.Predict = slurm.DefaultPredictPolicy()
			settleHeap(b)
			var st slurm.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = slurm.Simulate(cfg, p.contended)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Completed)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			b.ReportMetric(float64(st.PredictedBackfills), "pred-backfills")
			scored := st.PredictHits + st.PredictMisses
			if scored > 0 {
				b.ReportMetric(float64(st.PredictHits)/float64(scored), "hit-rate")
			}
		})
	}
}

// shardedBenchSizes are the population sizes BenchmarkSimulateSharded sweeps:
// the PR2 500k point (comparable against the heap-spec baseline) plus a 5M
// point only the sharded mode makes tractable in one sitting.
var shardedBenchSizes = []struct {
	name string
	jobs int
}{
	{"jobs=500k", 500_000},
	{"jobs=5M", 5_000_000},
}

// shardedBenchPop is one cached sharded-benchmark population: just the
// feasible arrival stream, without schedPop's contended variant (at 5M jobs
// the 4x-compressed copy would double a multi-gigabyte population for a
// benchmark that never reads it).
type shardedBenchPop struct {
	nodes int
	specs []workload.JobSpec
}

var shardedBenchCache sync.Map // jobs -> *shardedBenchPop

func shardedBenchPopulation(b *testing.B, jobs int) *shardedBenchPop {
	b.Helper()
	if jobs <= 500_000 {
		p := schedPopulation(b, jobs)
		return &shardedBenchPop{nodes: p.nodes, specs: p.specs}
	}
	if v, ok := shardedBenchCache.Load(jobs); ok {
		return v.(*shardedBenchPop)
	}
	factor := float64(jobs) / paperJobs
	gcfg := workload.ScaledConfig(factor)
	gcfg.TotalJobs = jobs
	gcfg.Seed = 7
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	p := &shardedBenchPop{nodes: scaledNodes(factor, 4)}
	cfg := slurm.DefaultConfig()
	cfg.Cluster.Nodes = p.nodes
	p.specs, _ = slurm.Feasible(cfg, gen.GenerateSpecs())
	shardedBenchCache.Store(jobs, p)
	return p
}

// BenchmarkSimulateSharded times SimulateSharded across shard counts 1/2/4/8
// with one worker per shard. shards=1 is byte-identical to Simulate and prices
// the mode's dispatch overhead; higher counts measure partition scaling. On a
// single-core host the shard goroutines serialize, so wall-clock gains there
// come only from each shard's smaller queue — the shard-imbalance metric
// (max/min events per shard) is what predicts multi-core speedup.
func BenchmarkSimulateSharded(b *testing.B) {
	for _, sz := range shardedBenchSizes {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", sz.name, shards), func(b *testing.B) {
				p := shardedBenchPopulation(b, sz.jobs)
				cfg := slurm.DefaultConfig()
				cfg.Cluster.Nodes = p.nodes
				sh := slurm.Sharding{Shards: shards, Workers: shards}
				settleHeap(b)
				var run *slurm.ShardedRun
				for i := 0; i < b.N; i++ {
					var err error
					run, err = slurm.SimulateSharded(context.Background(), cfg, p.specs, sh)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(run.Merged.Completed)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
				minE, maxE := run.ShardStats[0].EventsProcessed, run.ShardStats[0].EventsProcessed
				for _, st := range run.ShardStats[1:] {
					if st.EventsProcessed < minE {
						minE = st.EventsProcessed
					}
					if st.EventsProcessed > maxE {
						maxE = st.EventsProcessed
					}
				}
				if minE > 0 {
					b.ReportMetric(float64(maxE)/float64(minE), "shard-imbalance")
				}
				b.ReportMetric(float64(run.Windows), "sync-windows")
			})
		}
	}
}

// BenchmarkReplicate times the replication engine fanning four seeded
// generate→schedule→characterize pipelines, the workload the ROADMAP's
// what-if sweeps put on the simulator. 500k is omitted: replication cost is
// generation-dominated there and the 100k point already covers the claim.
func BenchmarkReplicate(b *testing.B) {
	for _, sz := range schedSizes {
		if sz.jobs > 100_000 {
			continue
		}
		sz := sz
		b.Run(sz.name, func(b *testing.B) {
			factor := float64(sz.jobs) / paperJobs
			gcfg := workload.ScaledConfig(factor)
			gcfg.TotalJobs = sz.jobs
			scfg := slurm.DefaultConfig()
			scfg.Cluster.Nodes = scaledNodes(factor, 4)
			exp := engine.Experiment{Gen: gcfg, Sim: scfg}
			const reps = 4
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch, err := engine.Run(context.Background(),
					engine.Config{RootSeed: 7, Reps: reps}, exp.Replicator())
				if err != nil {
					b.Fatal(err)
				}
				if got := batch.Completed(); got != reps {
					b.Fatalf("completed %d of %d: %v", got, reps, batch.FirstErr())
				}
			}
			b.ReportMetric(float64(reps)*float64(b.N)/b.Elapsed().Seconds(), "reps/s")
		})
	}
}
