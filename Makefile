# Build and verification entry points. `make check` is the tier-1 gate
# (ROADMAP.md): vet, build, a targeted race pass over the scheduler hot
# path (cluster/slurm/engine — the packages PR 2 rewired), then the full
# test suite under the race detector.

GO ?= go

.PHONY: check build vet test short race race-sched fuzz bench bench-figures golden clean

check: vet build race-sched race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Quick loop: skips the slow full-pipeline and replication tests.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Scheduler-focused race pass: the allocation index, the incremental
# schedule() loop and the replication engine that drives them in parallel.
race-sched:
	$(GO) test -race ./internal/cluster ./internal/slurm ./internal/engine

# Short fuzz session over every trace codec target.
fuzz:
	$(GO) test ./internal/trace -fuzz FuzzReadCSV -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzReadJSON -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzDatasetRoundTrip -fuzztime 30s

# Scheduler-scaling benchmarks (PR 2): the Schedule/Simulate/Replicate trio
# at 10k/100k/500k jobs, one timed run each, joined against the committed
# pre-index baseline into BENCH_PR2.json (see EXPERIMENTS.md).
bench:
	$(GO) test -run '^$$' -bench '^Benchmark(Schedule|Simulate|Replicate)$$' \
		-benchtime 1x -timeout 2h . | tee bench/last_run.txt
	$(GO) run ./cmd/benchjson -label post-index \
		-baseline bench/baseline_pr2.json < bench/last_run.txt > BENCH_PR2.json

# Figure/experiment benchmarks: regenerate every paper table and figure
# metric (the pre-PR2 `make bench`).
bench-figures:
	$(GO) test -bench . -benchmem -run '^$$' .

# Regenerate the pinned characterization figures after an intended change;
# review the golden diff like any other code change.
golden:
	$(GO) test ./internal/report -run Golden -update

clean:
	$(GO) clean ./...
