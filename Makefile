# Build and verification entry points. `make check` is the tier-1 gate
# (ROADMAP.md): vet, build, and the full test suite under the race detector.

GO ?= go

.PHONY: check build vet test short race fuzz bench golden clean

check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Quick loop: skips the slow full-pipeline and replication tests.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Short fuzz session over every trace codec target.
fuzz:
	$(GO) test ./internal/trace -fuzz FuzzReadCSV -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzReadJSON -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzDatasetRoundTrip -fuzztime 30s

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Regenerate the pinned characterization figures after an intended change;
# review the golden diff like any other code change.
golden:
	$(GO) test ./internal/report -run Golden -update

clean:
	$(GO) clean ./...
