# Build and verification entry points. `make check` is the tier-1 gate
# (ROADMAP.md): static analysis (go vet + simlint), build, the allocation
# guards, the full test suite under the race detector, then the chaos
# kill/recovery harness.

GO ?= go

.PHONY: check build vet lint test short race chaos fuzz bench bench-pr3 bench-fault bench-pr6 bench-pr7 bench-pr8 bench-pr9 bench-figures alloc-guard golden clean

check: lint build alloc-guard race chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis gate (PR 5): go vet plus the project's own analyzers
# (internal/lint driven by cmd/simlint) — wall-clock reads, RNG provenance,
# map-order output, float accumulation order, discarded codec/render errors,
# naive-spec mirroring, and lite vet passes. Zero findings required.
# Suppress an intentional exception with `//lint:allow <analyzer> <reason>`.
# The opt-in struct-padding report (not part of the gate, since field order
# can be wire-visible) is: $(GO) run ./cmd/simlint -only fieldalign ./...
lint: vet
	$(GO) run ./cmd/simlint ./...

test:
	$(GO) test ./...

# Quick loop: skips the slow full-pipeline and replication tests.
short:
	$(GO) test -short ./...

# Full suite under the race detector. This subsumes the historical
# targeted passes (race-sched, race-analyze, race-fault, race-stream,
# race-durable — PRs 2/3/4/8/9): every test they filtered for is in the
# tree and `go test -race ./...` runs them all exactly once. To narrow a
# reproduction, run the package directly:
#   $(GO) test -race -run <Test> ./internal/<pkg>
race:
	$(GO) test -race ./...

# Crash-recovery acceptance harness (PR 9): a real simcloudd subprocess is
# killed at 50+ randomized points — torn WAL writes at arbitrary byte
# offsets, deaths between commit and apply, deaths inside snapshot
# writes, raw SIGKILLs — while an idempotent client feeds batches through
# blind retries. The recovered server's /v1/summary and /v1/figures must be
# byte-identical to an uninterrupted server fed the same batches.
# Vary the schedule with SIMCLOUDD_CHAOS_SEED=<n>.
chaos:
	SIMCLOUDD_CHAOS_KILLS=50 $(GO) test -count=1 -run TestChaosKillRecovery -v -timeout 30m ./cmd/simcloudd

# Short fuzz session over every trace codec target, plus the calendar event
# queue cross-checked against the heap spec (PR 6) and the P² quantile
# estimator's invariants under arbitrary small/tied samples (PR 7).
fuzz:
	$(GO) test ./internal/trace -fuzz FuzzReadCSV -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzReadJSON -fuzztime 30s
	$(GO) test ./internal/trace -fuzz FuzzDatasetRoundTrip -fuzztime 30s
	$(GO) test ./internal/slurm -fuzz FuzzCalQueue -fuzztime 30s
	$(GO) test ./internal/predict -fuzz FuzzP2Quantile -fuzztime 30s
	$(GO) test ./internal/durable -fuzz FuzzWALRecord -fuzztime 30s

# Scheduler-scaling benchmarks (PR 2): the Schedule/Simulate/Replicate trio
# at 10k/100k/500k jobs, one timed run each, joined against the committed
# pre-index baseline into BENCH_PR2.json (see EXPERIMENTS.md).
bench:
	$(GO) test -run '^$$' -bench '^Benchmark(Schedule|Simulate|Replicate)$$' \
		-benchtime 1x -timeout 2h . | tee bench/last_run.txt
	$(GO) run ./cmd/benchjson -label post-index \
		-baseline bench/baseline_pr2.json < bench/last_run.txt > BENCH_PR2.json

# Columnar-engine benchmarks (PR 3): Characterize at 10k/100k jobs plus the
# PR 2 trio, joined against the committed pre-columnar baseline into
# BENCH_PR3.json (see bench/README.md).
bench-pr3:
	$(GO) test -run '^$$' -bench '^Benchmark(Characterize|Schedule|Simulate|Replicate)$$' \
		-benchtime 1x -timeout 2h . | tee bench/last_run_pr3.txt
	$(GO) run ./cmd/benchjson -label post-columnar \
		-baseline bench/baseline_pr3.json < bench/last_run_pr3.txt > BENCH_PR3.json

# Fault-path benchmarks (PR 4): the empty-plan guard — BenchmarkSimulate and
# BenchmarkSchedule must hold their PR 3 numbers now that every event passes
# through the fault-aware scheduler — plus BenchmarkSimulateFaults, which
# prices the machinery when a fault plan is live. Joined against the
# committed PR 3 baseline into BENCH_PR4.json (fault runs have no baseline
# row and report absolute numbers only).
bench-fault:
	$(GO) test -run '^$$' -bench '^Benchmark(Simulate|Schedule|SimulateFaults)$$' 		-benchtime 1x -timeout 2h . | tee bench/last_run_pr4.txt
	$(GO) run ./cmd/benchjson -label post-faults 		-baseline bench/baseline_pr3.json < bench/last_run_pr4.txt > BENCH_PR4.json

# Event-queue benchmarks (PR 6): BenchmarkSimulate now rides the calendar
# queue — its speedup column against the PR 3 (heap-era) baseline is the
# acceptance number — plus BenchmarkSimulateSharded sweeping shard counts
# 1/2/4/8 at 500k and 5M jobs (no baseline rows; absolute numbers plus the
# shard-imbalance metric).
bench-pr6:
	$(GO) test -run '^$$' -bench '^Benchmark(Simulate|Schedule|SimulateSharded)$$' 		-benchtime 1x -timeout 2h . | tee bench/last_run_pr6.txt
	$(GO) run ./cmd/benchjson -label post-calendar-queue 		-baseline bench/baseline_pr3.json < bench/last_run_pr6.txt > BENCH_PR6.json

# Prediction-scheduling benchmarks (PR 7): BenchmarkPredictSched prices the
# forecaster-driven backfill on the contended population; BenchmarkSchedule
# and BenchmarkSimulate rerun with prediction disabled, and their speedup
# columns against the PR 6 run guard the nil-predictor default path. Joined
# against BENCH_PR6.json into BENCH_PR7.json.
bench-pr7:
	$(GO) test -run '^$$' -bench '^Benchmark(Simulate|Schedule|PredictSched)$$' 		-benchtime 1x -timeout 2h . | tee bench/last_run_pr7.txt
	$(GO) run ./cmd/benchjson -label post-predictsched 		-baseline BENCH_PR6.json < bench/last_run_pr7.txt > BENCH_PR7.json

# Streaming-ingest benchmarks (PR 8): the interleaved append+query workload
# on the segmented store vs. the committed rebuild-per-batch numbers
# (bench/baseline_pr8.json carries the rebuild rows renamed to the streaming
# names so benchjson joins them — the speedup column at jobs=100k is the
# acceptance number, bar ≥10x), plus BenchmarkCharacterize re-run to guard
# the batch path against the same file's PR 3 rows (within 1.05x).
# BenchmarkStreamingIngestRebuild rides along unjoined so the baseline can
# be reproduced on any machine.
bench-pr8:
	$(GO) test -run '^$$' -bench '^Benchmark(StreamingIngest|StreamingIngestRebuild|Characterize)$$' \
		-benchtime 1x -timeout 2h . | tee bench/last_run_pr8.txt
	$(GO) run ./cmd/benchjson -label post-segstore \
		-baseline bench/baseline_pr8.json < bench/last_run_pr8.txt > BENCH_PR8.json

# Durability benchmarks (PR 9): BenchmarkDurableIngest prices crash safety
# on the ingest path (wal=off / wal=sync / raw in-memory; the acceptance bar
# is wal=sync within 1.5x of wal=off), BenchmarkDurableRecover times a cold
# Open from a pure WAL replay vs. a fresh snapshot, and the PR 8 streaming
# rows re-run to guard the in-process path against bench/baseline_pr8.json.
bench-pr9:
	$(GO) test -run '^$$' -bench '^Benchmark(DurableIngest|DurableRecover|StreamingIngest)$$' \
		-benchtime 1x -timeout 2h . | tee bench/last_run_pr9.txt
	$(GO) run ./cmd/benchjson -label post-durability \
		-baseline bench/baseline_pr8.json < bench/last_run_pr9.txt > BENCH_PR9.json

# Allocation-count guards (PR 6, part of `make check`): the calendar queue's
# steady-state zero-allocation property and the end-to-end per-job allocation
# budget of Simulate. Skipped automatically under -race.
alloc-guard:
	$(GO) test ./internal/slurm -count=1 		-run 'TestCalQueueSteadyStateAllocFree|TestHeapSpecBoxesPerEvent|TestSimulatePerJobAllocBudget'

# Figure/experiment benchmarks: regenerate every paper table and figure
# metric (the pre-PR2 `make bench`).
bench-figures:
	$(GO) test -bench . -benchmem -run '^$$' .

# Regenerate the pinned characterization figures after an intended change;
# review the golden diff like any other code change.
golden:
	$(GO) test ./internal/report -run Golden -update

clean:
	$(GO) clean ./...
