// Streaming-ingest benchmarks (PR 8): BenchmarkStreamingIngest times the
// interleaved append+query workload — batches of jobs arrive, and after
// every batch a live wait-statistics query is answered — on the segmented
// store, where sealed segments keep their cached sorted runs and a query
// pays one tail sort plus a two-way merge. BenchmarkStreamingIngestRebuild
// is the same workload on the pre-PR8 path: each batch appends into a
// Dataset and invalidates the columnar memo, so every query rebuilds and
// re-sorts from scratch. `make bench-pr8` joins the segmented rows against
// the committed rebuild baseline (bench/baseline_pr8.json) into
// BENCH_PR8.json; the acceptance bar is ≥10x at jobs=100k.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// streamSizes are the population sizes the streaming benchmarks sweep.
var streamSizes = []struct {
	name string
	jobs int
}{
	{"jobs=10k", 10_000},
	{"jobs=100k", 100_000},
}

// streamBatch is the ingest batch size: a query lands every 1k jobs, so the
// 100k point answers 100 live queries while ingesting.
const streamBatch = 1000

// streamQueryFingerprint folds a wait query's headline numbers so the
// compiler cannot elide the work and the two paths can assert they computed
// identical answers.
func streamQueryFingerprint(w core.WaitResult) float64 {
	return w.GPUWaitPct.P50 + w.CPUWaitPct.P50 + w.MedianWaitBySize[0] + w.GPUWaitUnder1MinFrac
}

// BenchmarkStreamingIngest is the segmented hot path: append a batch, then
// answer the live query from a snapshot. Sealed segments are sorted at most
// once; the per-query cost is the tail sort plus merges.
func BenchmarkStreamingIngest(b *testing.B) {
	for _, sz := range streamSizes {
		b.Run(sz.name, func(b *testing.B) {
			ds := charDataset(b, sz.jobs)
			b.ResetTimer()
			var fp float64
			for i := 0; i < b.N; i++ {
				st := trace.NewSegStore(trace.SegConfig{DurationDays: ds.DurationDays})
				fp = 0
				for lo := 0; lo < len(ds.Jobs); lo += streamBatch {
					hi := lo + streamBatch
					if hi > len(ds.Jobs) {
						hi = len(ds.Jobs)
					}
					st.AppendBatch(ds.Jobs[lo:hi])
					fp += streamQueryFingerprint(core.WaitsSeg(st.Snapshot(), 1))
				}
			}
			b.ReportMetric(fp, "query-fingerprint")
			b.ReportMetric(float64(len(ds.Jobs))/(b.Elapsed().Seconds()/float64(b.N)), "jobs/s")
		})
	}
}

// BenchmarkStreamingIngestSegSweep sweeps the tail seal threshold at the
// 100k point — the segment-size sensitivity study in EXPERIMENTS.md. Small
// segments seal (and cascade-merge) often; huge segments degenerate toward
// sorting the whole store on every query. Not part of bench-pr8; run it by
// name.
func BenchmarkStreamingIngestSegSweep(b *testing.B) {
	ds := charDataset(b, 100_000)
	for _, segJobs := range []int{512, 2048, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("seg=%d", segJobs), func(b *testing.B) {
			var fp float64
			for i := 0; i < b.N; i++ {
				st := trace.NewSegStore(trace.SegConfig{DurationDays: ds.DurationDays, SegmentJobs: segJobs})
				fp = 0
				for lo := 0; lo < len(ds.Jobs); lo += streamBatch {
					hi := lo + streamBatch
					if hi > len(ds.Jobs) {
						hi = len(ds.Jobs)
					}
					st.AppendBatch(ds.Jobs[lo:hi])
					fp += streamQueryFingerprint(core.WaitsSeg(st.Snapshot(), 1))
				}
			}
			b.ReportMetric(fp, "query-fingerprint")
			b.ReportMetric(float64(len(ds.Jobs))/(b.Elapsed().Seconds()/float64(b.N)), "jobs/s")
		})
	}
}

// BenchmarkStreamingIngestRebuild is the pre-PR8 baseline for the same
// workload: Dataset.Add invalidates the memo, so every query pays a full
// columnar rebuild and re-sort. Committed as bench/baseline_pr8.json; kept
// runnable so the comparison can be reproduced on any machine.
func BenchmarkStreamingIngestRebuild(b *testing.B) {
	for _, sz := range streamSizes {
		b.Run(sz.name, func(b *testing.B) {
			ds := charDataset(b, sz.jobs)
			b.ResetTimer()
			var fp float64
			for i := 0; i < b.N; i++ {
				acc := trace.NewDataset(ds.DurationDays)
				fp = 0
				for lo := 0; lo < len(ds.Jobs); lo += streamBatch {
					hi := lo + streamBatch
					if hi > len(ds.Jobs) {
						hi = len(ds.Jobs)
					}
					for k := lo; k < hi; k++ {
						acc.Add(ds.Jobs[k])
					}
					fp += streamQueryFingerprint(core.WaitsCols(acc.Columns()))
				}
			}
			b.ReportMetric(fp, "query-fingerprint")
			b.ReportMetric(float64(len(ds.Jobs))/(b.Elapsed().Seconds()/float64(b.N)), "jobs/s")
		})
	}
}
