// Characterization-scaling benchmarks (PR 3): BenchmarkCharacterize times
// the full figure suite (core.Characterize, Figs. 3-17) at 10k/100k-job
// scale. `make bench` runs this next to the PR 2 scheduler trio and emits
// BENCH_PR3.json (via cmd/benchjson) with a speedup column against the
// committed pre-columnar baseline, so the shared-column index and the
// parallel figure fan-out carry a measured claim rather than an asserted
// one.
package repro

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// charSizes are the population sizes BenchmarkCharacterize sweeps. 500k is
// omitted: the analysis cost is linear in jobs and series, so the 100k point
// already covers the scaling claim without an extra multi-GB population.
var charSizes = []struct {
	name string
	jobs int
}{
	{"jobs=10k", 10_000},
	{"jobs=100k", 100_000},
}

var charDataCache sync.Map // jobs -> *trace.Dataset

// charDataset builds (once per size) the paper-shaped dataset for the
// characterization benchmarks: the analytic generator path, which attaches
// the monitored time-series subset exactly like a replication run does.
func charDataset(b *testing.B, jobs int) *trace.Dataset {
	b.Helper()
	if v, ok := charDataCache.Load(jobs); ok {
		return v.(*trace.Dataset)
	}
	factor := float64(jobs) / paperJobs
	gcfg := workload.ScaledConfig(factor)
	gcfg.TotalJobs = jobs
	gcfg.Seed = 7
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	ds := gen.BuildDataset(gen.GenerateSpecs())
	charDataCache.Store(jobs, ds)
	return ds
}

// BenchmarkCharacterize times core.Characterize — all ~18 figure analyses —
// on the paper-shaped dataset. Each iteration re-wraps the shared job and
// series storage in a fresh Dataset value so per-dataset caches built by one
// iteration cannot leak into the next: the benchmark always measures the
// full cost of analyzing a dataset seen for the first time. This is the
// benchmark the PR 3 acceptance criterion reads: ≥3x over the pre-columnar
// baseline at jobs=100k.
func BenchmarkCharacterize(b *testing.B) {
	for _, sz := range charSizes {
		b.Run(sz.name, func(b *testing.B) {
			ds := charDataset(b, sz.jobs)
			b.ResetTimer()
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				fresh := &trace.Dataset{
					Jobs:         ds.Jobs,
					Series:       ds.Series,
					DurationDays: ds.DurationDays,
				}
				if rep = core.Characterize(fresh); rep == nil {
					b.Fatal("nil report")
				}
			}
			b.ReportMetric(rep.Utilization.SM.P50, "sm-median-pct")
			b.ReportMetric(float64(rep.Phases.JobsAnalyzed), "series-jobs")
		})
	}
}
