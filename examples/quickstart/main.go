// Quickstart: synthesize a small Supercloud-shaped workload, build the
// joined dataset, run the characterization suite, and print the headline
// findings next to the paper's published values.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Configure a generator at 15 % of the paper's population and build
	// the dataset along the analytic path.
	cfg := workload.ScaledConfig(0.15)
	cfg.Seed = 7
	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	specs := gen.GenerateSpecs()
	ds := gen.BuildDataset(specs)
	fmt.Printf("synthesized %d jobs from %d users; %d GPU jobs pass the 30s filter\n\n",
		len(ds.Jobs), len(ds.Users()), len(ds.GPUJobs()))

	// 2. Run the full characterization.
	rep := core.Characterize(ds)

	// 3. Compare the headlines against the paper.
	row := func(name string, got float64, paper string) {
		fmt.Printf("  %-42s %10.2f   (paper: %s)\n", name, got, paper)
	}
	fmt.Println("headline statistics vs the paper:")
	row("GPU job run-time median (min)", rep.Runtimes.GPU.P50, "30")
	row("CPU job run-time median (min)", rep.Runtimes.CPU.P50, "8")
	row("GPU jobs waiting <1 min (%)", rep.Waits.GPUWaitUnder1MinFrac*100, "70")
	row("SM utilization median (%)", rep.Utilization.SM.P50, "16")
	row("memory-BW utilization median (%)", rep.Utilization.Mem.P50, "2")
	row("jobs with >50% SM (%)", rep.Utilization.SMOver50*100, "20")
	row("median average power (W)", rep.Power.Avg.P50, "45")
	row("active-phase time median (%)", rep.Phases.ActiveTimePct.P50, "84")
	row("single-GPU job share (%)", rep.GPUCounts.SingleGPUFrac*100, "84")
	row("mature job share (%)", rep.Lifecycle.JobShare[trace.Mature]*100, "60")
	row("exploratory GPU-hour share (%)", rep.Lifecycle.HourShare[trace.Exploratory]*100, "34")
	row("top-5% user job share (%)", rep.Concentration.Top5PctShare*100, "44")

	// 4. The Fig. 12 trend: expert users run hotter, but are not more
	// predictable.
	avgSM := rep.UserTrends.Get("jobs", "avg_sm")
	covSM := rep.UserTrends.Get("jobs", "cov_sm")
	fmt.Printf("\nSpearman(jobs, avg SM) = %.2f (p=%.3g); Spearman(jobs, CoV SM) = %.2f\n",
		avgSM.Rho, avgSM.PValue, covSM.Rho)
}
