// Monitoring operations: the paper's §II lessons, demonstrated. Naively
// retaining full 100 ms-class sample streams for every job overflows the
// per-node buffers ("the logging tools can easily overload the metadata
// server and shared file system"), while the production design — streaming
// min/mean/max digests per job, full series only for a small subset — stays
// tiny. A malfunctioning node is also injected to show the pipeline
// degrading gracefully instead of corrupting the dataset.
package main

import (
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	gcfg := workload.ScaledConfig(0.005)
	gcfg.Seed = 13
	gen, err := workload.NewGenerator(gcfg)
	if err != nil {
		log.Fatal(err)
	}
	specs := gen.GenerateSpecs()
	var gpuSpecs []workload.JobSpec
	for _, s := range specs {
		if s.IsGPU() && s.RunSec >= 30 {
			gpuSpecs = append(gpuSpecs, s)
		}
	}
	fmt.Printf("monitoring %d GPU jobs on a 16-node test fleet\n\n", len(gpuSpecs))

	// Scenario A: naive full-series retention at the paper's 100 ms cadence
	// against a 4 MiB local log slice: any job beyond ~2 hours overflows.
	naive := monitor.DefaultConfig()
	naive.GPUIntervalSec = 0.1
	naive.RetainSeries = true
	naive.MaxSamplesPerGPU = 1 << 22
	naive.NodeBufferBytes = 4 << 20
	overflowsA, _ := runFleet(naive, gpuSpecs, nil)

	// Scenario B: production design — digests only, same buffer, same
	// cadence.
	prod := monitor.DefaultConfig()
	prod.GPUIntervalSec = 0.1
	prod.NodeBufferBytes = 4 << 20
	overflowsB, _ := runFleet(prod, gpuSpecs, nil)

	fmt.Println("== buffer pressure (4 MiB log slice per node, 100 ms cadence) ==")
	fmt.Printf("naive full-series retention:  %4d node-buffer overflows\n", overflowsA)
	fmt.Printf("digest-only production design:%4d node-buffer overflows\n", overflowsB)

	// Scenario C: a malfunctioning node drops half its samples and stalls
	// a fifth of its collectors.
	faulty := monitor.DefaultConfig()
	faulty.GPUIntervalSec = 5
	plan := monitor.FaultPlan{3: {DropRate: 0.5, JitterFactor: 2, StallProb: 0.2}}
	_, pipe := runFleet(faulty, gpuSpecs, plan)
	fmt.Println("\n== malfunctioning node 3 (50% drops, 2x jitter, 20% stalls) ==")
	fmt.Printf("samples dropped: %d; collectors stalled: %d\n",
		pipe.DroppedSamples(), pipe.StalledJobs())

	// The dataset remains usable: stalled jobs carry explicit zero digests.
	zeroDigests := 0
	for _, id := range pipe.JobIDs() {
		sums := pipe.Summaries(id)
		if len(sums) > 0 && sums[0][metrics.SMUtil].Max == 0 && sums[0][metrics.Power].Max == 0 {
			zeroDigests++
		}
	}
	fmt.Printf("jobs with empty (zero) digests, identifiable downstream: %d\n", zeroDigests)
	fmt.Println("\nthe pipeline degrades per-job, never corrupting the joined dataset —")
	fmt.Println("the property the paper's epilog-based collection depends on.")
}

// runFleet pushes every job through a fresh pipeline, assigning nodes
// round-robin over 16 nodes, and returns the overflow count and pipeline.
func runFleet(cfg monitor.Config, specs []workload.JobSpec, faults monitor.FaultPlan) (int, *monitor.Pipeline) {
	pipe, err := monitor.NewPipeline(cfg, 13)
	if err != nil {
		log.Fatal(err)
	}
	if faults != nil {
		pipe.InjectFaults(faults)
	}
	gcfg := workload.DefaultConfig()
	for i := range specs {
		s := &specs[i]
		sources := make([]monitor.Source, len(s.Profiles))
		for k, p := range s.Profiles {
			sources[k] = p
		}
		m := pipe.Prolog(s.ID, i%16, gcfg.GPUSpec, gcfg.PowerModel, sources, cfg.RetainSeries)
		if err := pipe.Epilog(m); err != nil {
			log.Fatal(err)
		}
	}
	return pipe.Overflows(), pipe
}
