// Capacity planning: an operator sizing the next procurement round uses the
// paper's §VIII recommendations — power-capped over-provisioning (Fig. 9b)
// and a two-tier fleet — and quantifies both against a synthesized year of
// the current workload.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/gpu"
	"repro/internal/report"
	"repro/internal/sharing"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	cfg := workload.ScaledConfig(0.08)
	cfg.Seed = 7
	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ds := gen.BuildDataset(gen.GenerateSpecs())

	// Question 1: if we cap every V100 at lower power, how many more GPUs
	// does the same electrical budget feed, and who gets hurt?
	fmt.Println("== power-capped over-provisioning (Fig. 9b) ==")
	caps := []float64{120, 150, 200, 250}
	res, err := sharing.PowerCapStudy(ds, gpu.V100(), 448, caps)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable("", "cap (W)", "fleet size", "unimpacted jobs", "avg-impacted jobs", "mean slowdown")
	for _, l := range res.Levels {
		t.AddRowF(l.CapWatts, 448+l.ExtraGPUsSupportable,
			report.Pct(l.UnimpactedFrac), report.Pct(l.AvgImpactedFrac), l.MeanSlowdown)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Question 2: is a two-tier fleet cheaper for this job mix? Sweep the
	// slow-tier routing sets.
	fmt.Println("\n== two-tier fleet designs (Sec VIII) ==")
	designs := []struct {
		name string
		cats []trace.Category
	}{
		{"IDE only", []trace.Category{trace.IDE}},
		{"IDE + development", []trace.Category{trace.IDE, trace.Development}},
		{"IDE + dev + exploratory", []trace.Category{trace.IDE, trace.Development, trace.Exploratory}},
	}
	t2 := report.NewTable("", "slow-tier routing", "capex savings", "slow-tier slowdown", "slow-tier jobs")
	for _, d := range designs {
		plan := sharing.DefaultTierPlan()
		plan.SlowTierCategories = d.cats
		out, err := sharing.TwoTierStudy(ds, plan)
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRowF(d.name, report.Pct(out.CapexSavingsFrac),
			out.TwoTier.MeanSlowdown, report.Pct(out.TwoTier.SlowTierJobFrac))
	}
	if err := t2.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Question 3: how much lost work would checkpointing reclaim from the
	// failure/timeout-terminated development and IDE jobs?
	fmt.Println("\n== checkpoint/restart planning (Sec VI) ==")
	ck, err := sharing.CheckpointStudy(ds, sharing.DefaultCheckpointConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("covered jobs: %d; Young-Daly interval: %.0fs\n", ck.JobsCovered, ck.IntervalSec)
	fmt.Printf("lost GPU hours: %.0f without checkpoints, %.0f with (net saving %.0f GPUh)\n",
		ck.LostGPUHoursNoCkpt, ck.LostGPUHoursWithCkpt, ck.SavedGPUHours)
}
