// User triage: a system administrator asks which users to target with which
// intervention — the §IV/§VI/§VIII analysis pipeline turned into an
// actionable report. Heavy low-utilization users are co-location candidates,
// IDE-heavy users need state-saving, and exploratory-heavy users are the
// audience for the cheap GPU tier.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	cfg := workload.ScaledConfig(0.08)
	cfg.Seed = 99
	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ds := gen.BuildDataset(gen.GenerateSpecs())
	users := core.AggregateUsers(ds)
	byUser := ds.ByUser()

	// Population overview (§IV).
	conc := core.Concentration(ds)
	fmt.Printf("%d users; top 5%% submit %s of jobs, top 20%% submit %s (Gini %.2f)\n\n",
		conc.Users, report.Pct(conc.Top5PctShare), report.Pct(conc.Top20PctShare), conc.Gini)

	// Rank users by GPU hours and classify their dominant life-cycle stage.
	type triageRow struct {
		user              int
		hours             float64
		jobs              int
		avgSM             float64
		dominant          trace.Category
		nonMatureHourFrac float64
	}
	var rows []triageRow
	for _, u := range users {
		jobs := byUser[u.User]
		var hours [trace.NumCategories]float64
		var total float64
		for _, j := range jobs {
			h := j.GPUHours()
			hours[lifecycle.Classify(j)] += h
			total += h
		}
		dom := trace.Mature
		for c := trace.Category(0); c < trace.NumCategories; c++ {
			if hours[c] > hours[dom] {
				dom = c
			}
		}
		row := triageRow{user: u.User, hours: total, jobs: u.Jobs, avgSM: u.AvgSM, dominant: dom}
		if total > 0 {
			row.nonMatureHourFrac = 1 - hours[trace.Mature]/total
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].hours > rows[b].hours })

	t := report.NewTable("top users by GPU hours, with suggested intervention",
		"user", "GPU hours", "jobs", "avg SM", "dominant stage", "suggestion")
	limit := 12
	if len(rows) < limit {
		limit = len(rows)
	}
	for _, r := range rows[:limit] {
		t.AddRowF(r.user, r.hours, r.jobs, r.avgSM, r.dominant.String(), suggest(r.avgSM, r.dominant))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// How much of the system's GPU time is non-mature, and who holds it?
	var nonMature, total float64
	for _, r := range rows {
		nonMature += r.nonMatureHourFrac * r.hours
		total += r.hours
	}
	fmt.Printf("\nnon-mature work: %s of all GPU hours (paper: ~61%%)\n", report.Pct(nonMature/total))
	fmt.Println("interventions follow the paper's Sec VIII user recommendations.")
}

// suggest maps a user's profile onto the paper's §VIII recommendations.
func suggest(avgSM float64, dominant trace.Category) string {
	switch {
	case dominant == trace.IDE:
		return "checkpointing + co-location"
	case dominant == trace.Exploratory:
		return "cheap GPU tier"
	case avgSM < 10:
		return "co-location candidate"
	default:
		return "keep on fast tier"
	}
}
