// Co-location study: exercise the paper's central "opportunity" twice.
// First at the GPU level — pair low-utilization jobs onto shared GPUs under
// three policies and compare saved GPU hours against interference. Then at
// the node level — run the same workload through the discrete-event
// scheduler with and without CPU-slice co-location and watch the Fig. 3b
// queue-wait gap appear.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/report"
	"repro/internal/sharing"
	"repro/internal/slurm"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	cfg := workload.ScaledConfig(0.03)
	cfg.Seed = 11
	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	specs := gen.GenerateSpecs()

	// Part 1: GPU-level sharing policies.
	fmt.Println("== GPU co-location policies ==")
	ccfg := sharing.DefaultColocationConfig()
	t := report.NewTable("", "policy", "pairs", "saved GPU hours", "mean slowdown", "max slowdown")
	for _, pol := range []sharing.ColocationPolicy{sharing.Exclusive, sharing.StaticPairing, sharing.PhaseAware} {
		rep := sharing.Colocate(specs, pol, ccfg)
		t.AddRowF(pol.String(), rep.PairsFormed, rep.GPUHoursExclusive-rep.GPUHoursUsed,
			rep.MeanSlowdown, rep.MaxSlowdown)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nphase-aware pairing keeps the worst-case interference bounded while")
	fmt.Println("static (mean-based) pairing admits synchronous bursts — the paper's")
	fmt.Println("point that co-location must respect temporal variation.")

	// Part 2: node-level CPU co-location in the scheduler. The mechanism
	// needs CPU-core pressure with GPU headroom, so stage it explicitly: a
	// rolling background of shared CPU analytics jobs keeps most node cores
	// busy while a stream of generated single-GPU jobs arrives. Under the
	// production policy the GPU jobs slip into the leftover core slices;
	// under exclusive-node scheduling they queue behind the CPU work.
	fmt.Println("\n== scheduler policy ablation (Fig. 3b mechanism) ==")
	staged := stageContention(specs)
	run := func(colocate bool) (gpuMean, cpuMean float64) {
		scfg := slurm.DefaultConfig()
		scfg.Cluster.Nodes = 8
		scfg.Policy.Colocate = colocate
		sim, err := slurm.NewSimulator(scfg)
		if err != nil {
			log.Fatal(err)
		}
		results, _, err := sim.Run(staged)
		if err != nil {
			log.Fatal(err)
		}
		ds := sim.BuildDataset(staged, results, 125)
		var gw, cw []float64
		for _, j := range ds.GPUJobs() {
			gw = append(gw, j.WaitSec)
		}
		for _, j := range ds.CPUJobs() {
			cw = append(cw, j.WaitSec)
		}
		return stats.Mean(gw), stats.Mean(cw)
	}
	gColo, cColo := run(true)
	gExcl, cExcl := run(false)
	t2 := report.NewTable("", "policy", "mean GPU wait (s)", "mean CPU wait (s)")
	t2.AddRowF("co-location (production)", gColo, cColo)
	t2.AddRowF("exclusive nodes (ablation)", gExcl, cExcl)
	if err := t2.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if gExcl > gColo {
		fmt.Printf("\nexclusive-node scheduling inflates GPU waits %.1fx -- the short GPU\n",
			safeRatio(gExcl, gColo))
		fmt.Println("queues of Fig. 3b come from the co-location policy, not calibration.")
	}
}

// stageContention builds the demonstration workload: long shared CPU jobs
// rolling over most node cores, plus the first few hundred generated
// single-GPU jobs re-timed to arrive during that window.
func stageContention(specs []workload.JobSpec) []workload.JobSpec {
	var staged []workload.JobSpec
	id := int64(1)
	// Background: 30-core shared CPU jobs, six at a time, for ~14 hours.
	for wave := 0; wave < 12; wave++ {
		for k := 0; k < 6; k++ {
			staged = append(staged, workload.JobSpec{
				ID: id, User: 0, Interface: trace.Batch, Exit: trace.ExitSuccess,
				SubmitSec: float64(wave) * 5000, RunSec: 5200, LimitSec: 86400,
				Cores: 30, MemGB: 64,
			})
			id++
		}
	}
	// Foreground: generated single-GPU jobs arriving every 2 minutes.
	n := 0
	for i := range specs {
		sp := specs[i]
		if !sp.IsGPU() || sp.NumGPUs != 1 || sp.RunSec < 60 {
			continue
		}
		sp.ID = id
		sp.SubmitSec = 600 + float64(n)*400
		if sp.RunSec > 1800 {
			sp.RunSec = 1800
		}
		staged = append(staged, sp)
		id++
		n++
		if n == 120 {
			break
		}
	}
	sort.Slice(staged, func(a, b int) bool { return staged[a].SubmitSec < staged[b].SubmitSec })
	for i := range staged {
		staged[i].ID = int64(i + 1)
	}
	return staged
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return a
	}
	return a / b
}
